"""Termination-safe shared-memory cleanup.

``atexit`` covers normal interpreter exit, but a coordinator dying to
SIGTERM / SIGINT (CI job cancellation, a supervisor restart, Ctrl-C)
skips ``atexit`` unless something translates the signal.  The sharedmem
module chains its own sweep in front of whatever handler was installed
and re-raises the default disposition, so:

* segments owned by the dying process unlink from ``/dev/shm``;
* the process still reports "killed by signal" to its parent;
* forked children (pool workers inherit the registry) never unlink the
  parent's live segments — the sweep is pid-guarded.
"""

import os
import pathlib
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.engine import sharedmem
from repro.engine.sharedmem import SharedMatrix

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no /dev/shm on this platform"
)

#: The import root the children need on PYTHONPATH (src layout).
_SRC_DIR = pathlib.Path(sharedmem.__file__).resolve().parents[2]

#: A child process that creates a segment, reports it, and waits to be shot.
_CHILD = textwrap.dedent(
    """
    import sys, time
    import numpy as np
    from repro.engine.sharedmem import SharedMatrix

    shared = SharedMatrix.create(np.ones((64, 64)))
    print(shared.handle.name, flush=True)
    time.sleep(60)  # killed long before this expires
    """
)


def _spawn_child():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(_SRC_DIR), env.get("PYTHONPATH", "")])
    )
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    name = child.stdout.readline().strip()
    assert name, "child never reported its segment name"
    return child, name


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signal_unlinks_owned_segments(signum):
    child, name = _spawn_child()
    try:
        path = os.path.join("/dev/shm", name)
        assert os.path.exists(path), "segment should be live before the signal"
        child.send_signal(signum)
        child.wait(timeout=30)
        assert not os.path.exists(path), "segment leaked past the signal"
        # the chained handler re-raises the default disposition, so the
        # exit status still says "killed by <signal>"
        assert child.returncode == -signum
    finally:
        child.stdout.close()
        if child.poll() is None:
            child.kill()
            child.wait()


def test_sweep_skips_segments_owned_by_another_pid():
    """A forked child inheriting the registry must not unlink for the parent."""
    matrix = np.arange(16.0).reshape(4, 4)
    with SharedMatrix.create(matrix) as shared:
        name = shared.handle.name
        assert name in sharedmem._OWNED
        assert sharedmem._OWNED_PIDS[name] == os.getpid()

        # simulate being the forked child: the registry entry is present
        # but stamped with the parent's pid
        sharedmem._OWNED_PIDS[name] = os.getpid() + 1
        try:
            sharedmem._sweep_owned()
            # the "foreign" segment survived the sweep
            assert os.path.exists(os.path.join("/dev/shm", name))
            assert name in sharedmem._OWNED
        finally:
            sharedmem._OWNED_PIDS[name] = os.getpid()
    assert not os.path.exists(os.path.join("/dev/shm", name))


def test_sweep_unlinks_own_segments():
    matrix = np.ones((4, 4))
    shared = SharedMatrix.create(matrix)
    name = shared.handle.name
    assert os.path.exists(os.path.join("/dev/shm", name))
    sharedmem._sweep_owned()
    assert not os.path.exists(os.path.join("/dev/shm", name))
    assert name not in sharedmem._OWNED


def test_handlers_chain_to_a_previously_installed_python_handler():
    """An application SIGTERM handler installed first still runs."""
    code = textwrap.dedent(
        """
        import os, signal, sys, time
        import numpy as np

        fired = []
        def app_handler(signum, frame):
            print("app-handler-ran", flush=True)
            sys.exit(7)

        signal.signal(signal.SIGTERM, app_handler)
        from repro.engine.sharedmem import SharedMatrix
        shared = SharedMatrix.create(np.ones((8, 8)))
        print(shared.handle.name, flush=True)
        time.sleep(60)
        """
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(_SRC_DIR), env.get("PYTHONPATH", "")])
    )
    child = subprocess.Popen(
        [sys.executable, "-c", code],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        name = child.stdout.readline().strip()
        child.send_signal(signal.SIGTERM)
        out, _ = child.communicate(timeout=30)
        assert "app-handler-ran" in out
        assert child.returncode == 7  # the app handler decided the exit
        assert not os.path.exists(os.path.join("/dev/shm", name))
    finally:
        child.stdout.close()
        if child.poll() is None:
            child.kill()
            child.wait()
