"""Unit tests for TraceSet."""

import numpy as np
import pytest

from repro.traces import PowerTrace, TimeGrid, TraceSet


@pytest.fixture
def grid():
    return TimeGrid(0, 60, 24)


@pytest.fixture
def trio(grid):
    return TraceSet.from_traces(
        {
            "a": PowerTrace(grid, np.linspace(0, 10, 24)),
            "b": PowerTrace.constant(grid, 5),
            "c": PowerTrace(grid, np.linspace(10, 0, 24)),
        }
    )


class TestConstruction:
    def test_from_traces_preserves_order(self, trio):
        assert trio.ids == ["a", "b", "c"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TraceSet.from_traces({})

    def test_duplicate_ids_rejected(self, grid):
        with pytest.raises(ValueError):
            TraceSet(grid, ["x", "x"], np.ones((2, 24)))

    def test_shape_mismatch_rejected(self, grid):
        with pytest.raises(ValueError):
            TraceSet(grid, ["x"], np.ones((1, 23)))

    def test_negative_rejected(self, grid):
        with pytest.raises(ValueError):
            TraceSet(grid, ["x"], -np.ones((1, 24)))

    def test_grid_mismatch_rejected(self, grid):
        traces = {
            "a": PowerTrace.constant(grid, 1),
            "b": PowerTrace.constant(TimeGrid(0, 30, 48), 1),
        }
        with pytest.raises(Exception):
            TraceSet.from_traces(traces)


class TestAccess:
    def test_len_contains(self, trio):
        assert len(trio) == 3
        assert "a" in trio
        assert "z" not in trio

    def test_getitem_returns_powertrace(self, trio):
        trace = trio["b"]
        assert isinstance(trace, PowerTrace)
        assert trace.peak() == 5

    def test_row_matches_getitem(self, trio):
        assert np.array_equal(trio.row("a"), trio["a"].values)

    def test_index_of(self, trio):
        assert trio.index_of("c") == 2


class TestBulkStats:
    def test_peaks(self, trio):
        assert np.allclose(trio.peaks(), [10, 5, 10])

    def test_means(self, trio):
        assert trio.means()[1] == pytest.approx(5.0)

    def test_total(self, trio):
        total = trio.total()
        assert total.values[0] == pytest.approx(0 + 5 + 10)

    def test_sum_of_peaks(self, trio):
        assert trio.sum_of_peaks() == pytest.approx(25.0)

    def test_aggregate_peak_le_sum_of_peaks(self, trio):
        assert trio.aggregate_peak() <= trio.sum_of_peaks()

    def test_aggregate_of_subset(self, trio):
        pair = trio.aggregate_of(["a", "c"])
        # a + c is constant 10.
        assert pair.peak() == pytest.approx(10.0)
        assert pair.valley() == pytest.approx(10.0)

    def test_aggregate_of_empty_rejected(self, trio):
        with pytest.raises(ValueError):
            trio.aggregate_of([])

    def test_mean_trace(self, trio):
        mean = trio.mean_trace()
        assert mean.values[0] == pytest.approx(5.0)


class TestSubsetsAndMerge:
    def test_subset_order(self, trio):
        sub = trio.subset(["c", "a"])
        assert sub.ids == ["c", "a"]
        assert np.array_equal(sub.row("c"), trio.row("c"))

    def test_subset_unknown_id(self, trio):
        with pytest.raises(KeyError):
            trio.subset(["nope"])

    def test_merged_with(self, grid, trio):
        other = TraceSet.from_traces({"d": PowerTrace.constant(grid, 1)})
        merged = trio.merged_with(other)
        assert len(merged) == 4
        assert merged.ids[-1] == "d"

    def test_merged_with_overlap_rejected(self, trio):
        with pytest.raises(ValueError):
            trio.merged_with(trio)

    def test_traces_roundtrip(self, trio):
        materialised = trio.traces()
        rebuilt = TraceSet.from_traces(materialised)
        assert np.array_equal(rebuilt.matrix, trio.matrix)


class TestWeekOperations:
    def test_average_weeks(self):
        grid = TimeGrid.for_weeks(2, step_minutes=6 * 60)
        per_week = grid.samples_per_week
        matrix = np.concatenate(
            [np.full(per_week, 2.0), np.full(per_week, 4.0)]
        )[np.newaxis, :]
        ts = TraceSet(grid, ["x"], matrix)
        averaged = ts.average_weeks()
        assert averaged.grid.n_samples == per_week
        assert averaged.row("x").mean() == pytest.approx(3.0)

    def test_week_extraction(self):
        grid = TimeGrid.for_weeks(2, step_minutes=6 * 60)
        per_week = grid.samples_per_week
        matrix = np.concatenate(
            [np.full(per_week, 2.0), np.full(per_week, 4.0)]
        )[np.newaxis, :]
        ts = TraceSet(grid, ["x"], matrix)
        assert ts.week(1).row("x").mean() == pytest.approx(4.0)

    def test_week_out_of_range(self, trio):
        with pytest.raises(Exception):
            trio.week(5)


class TestDtype:
    def test_default_storage_is_float64(self, trio):
        assert trio.matrix.dtype == np.float64

    def test_float32_storage_is_kept(self, grid):
        matrix = np.random.default_rng(0).random((3, 24)).astype(np.float32)
        ts = TraceSet(grid, ["a", "b", "c"], matrix, dtype=np.float32)
        assert ts.matrix.dtype == np.float32
        # Matching dtype means zero-copy: the set wraps the caller's array.
        assert ts.matrix is matrix

    def test_float32_survives_derivations(self):
        week_grid = TimeGrid(0, 60, 7 * 24)
        matrix = np.abs(
            np.random.default_rng(1).random((3, week_grid.n_samples))
        ).astype(np.float32)
        ts = TraceSet(week_grid, ["a", "b", "c"], matrix, dtype=np.float32)
        assert ts.subset(["a", "c"]).matrix.dtype == np.float32
        assert ts.week(0).matrix.dtype == np.float32
        assert ts.average_weeks().matrix.dtype == np.float32

    def test_merged_with_promotes_dtype(self, grid):
        f32 = TraceSet(grid, ["a"], np.ones((1, 24), dtype=np.float32), dtype=np.float32)
        f64 = TraceSet(grid, ["b"], np.ones((1, 24)))
        assert f32.merged_with(f64).matrix.dtype == np.float64
