"""Power infrastructure substrate: topology, placement, aggregation, budgets.

Models the multi-level power delivery tree of Sec. 2.1 (Figure 2) together
with the bookkeeping the paper's analysis needs: instance→leaf assignments,
per-node aggregate traces, provisioning policies, headroom-driven expansion,
and circuit-breaker auditing.
"""

from .aggregation import NodePowerView, peak_reduction_by_level

# The capping loop's canonical home is repro.engine.capping; import it from
# there rather than through the deprecated ``repro.infra.capping`` shim so
# a plain ``import repro`` never trips the shim's DeprecationWarning.
from ..engine.capping import (
    CappingPolicy,
    CappingReport,
    CappingSimulator,
    NodeCappingStats,
    compare_capping,
)
from .persistence import (
    load_assignment,
    load_topology,
    save_assignment,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from .assignment import Assignment, AssignmentError
from .breaker import BreakerModel, BreakerTrip, audit_view, power_safe
from .budget import (
    GammaProvisioningPolicy,
    PeakProvisioningPolicy,
    PercentileProvisioningPolicy,
    apply_budgets,
    compute_budgets,
    provision_from_view,
    provision_hierarchical,
)
from .builder import LevelSpec, TopologySpec, build_topology, ocp_spec, two_level_spec
from .headroom import ExpansionPlan, HeadroomIndex, node_headroom, plan_expansion
from .topology import Level, PowerNode, PowerTopology, TopologyError

__all__ = [
    "CappingPolicy",
    "CappingReport",
    "CappingSimulator",
    "NodeCappingStats",
    "compare_capping",
    "save_topology",
    "load_topology",
    "save_assignment",
    "load_assignment",
    "topology_to_dict",
    "topology_from_dict",
    "Level",
    "PowerNode",
    "PowerTopology",
    "TopologyError",
    "LevelSpec",
    "TopologySpec",
    "build_topology",
    "ocp_spec",
    "two_level_spec",
    "Assignment",
    "AssignmentError",
    "NodePowerView",
    "peak_reduction_by_level",
    "GammaProvisioningPolicy",
    "PeakProvisioningPolicy",
    "PercentileProvisioningPolicy",
    "compute_budgets",
    "apply_budgets",
    "provision_from_view",
    "provision_hierarchical",
    "ExpansionPlan",
    "HeadroomIndex",
    "node_headroom",
    "plan_expansion",
    "BreakerModel",
    "BreakerTrip",
    "audit_view",
    "power_safe",
]
