"""Unit tests for forecasting and predictability validation."""

import numpy as np
import pytest

from repro.traces import (
    InstanceRecord,
    PowerTrace,
    ServiceInstance,
    TimeGrid,
    mape,
    peak_error,
    peak_time_error_minutes,
    predictability_report,
    seasonal_naive_forecast,
    web_profile,
)


@pytest.fixture
def grid():
    return TimeGrid.for_weeks(1, step_minutes=60)


def record_with(grid, training_values, test_values):
    return InstanceRecord(
        instance=ServiceInstance("x-0", "x"),
        training_trace=PowerTrace(grid, training_values),
        test_trace=PowerTrace(grid, test_values),
    )


class TestForecast:
    def test_seasonal_naive_is_training_trace(self, grid):
        record = record_with(grid, np.full(168, 7.0), np.full(168, 9.0))
        forecast = seasonal_naive_forecast(record)
        assert forecast == record.training_trace
        # And it is a copy, not a view.
        forecast.values[0] = 999
        assert record.training_trace.values[0] == 7.0


class TestErrorMetrics:
    def test_mape_zero_for_perfect(self, grid):
        trace = PowerTrace(grid, np.linspace(1, 10, 168))
        assert mape(trace, trace) == pytest.approx(0.0)

    def test_mape_value(self, grid):
        actual = PowerTrace.constant(grid, 10.0)
        forecast = PowerTrace.constant(grid, 12.0)
        assert mape(forecast, actual) == pytest.approx(0.2)

    def test_mape_ignores_zero_actuals(self, grid):
        actual = PowerTrace.zeros(grid)
        forecast = PowerTrace.constant(grid, 5.0)
        assert mape(forecast, actual) == 0.0

    def test_peak_error_sign(self, grid):
        actual = PowerTrace.constant(grid, 10.0)
        under = PowerTrace.constant(grid, 8.0)
        over = PowerTrace.constant(grid, 12.0)
        assert peak_error(under, actual) > 0   # under-forecast: dangerous
        assert peak_error(over, actual) < 0    # over-forecast: wasteful

    def test_peak_time_error_circular(self, grid):
        early = np.zeros(168)
        early[1] = 10.0  # peak at 01:00
        late = np.zeros(168)
        late[23] = 10.0  # peak at 23:00
        error = peak_time_error_minutes(
            PowerTrace(grid, early), PowerTrace(grid, late)
        )
        assert error == pytest.approx(120.0)  # 2h around midnight, not 22h


class TestReport:
    def test_synthetic_fleet_is_predictable(self, synthesizer):
        """The weekly-periodic synthetic fleet must forecast well — the
        premise the paper's Sec. 5.1 protocol rests on."""
        records = synthesizer.service_instances(web_profile(), 8)
        report = predictability_report(records)
        assert report.mean_mape < 0.25
        assert report.mean_abs_peak_error < 0.15
        assert report.mean_peak_time_error_minutes < 6 * 60

    def test_worst_instances(self, synthesizer):
        records = synthesizer.service_instances(web_profile(), 6)
        report = predictability_report(records)
        worst = report.worst_instances(2)
        assert len(worst) == 2
        assert report.per_instance_mape[worst[0]] >= report.per_instance_mape[worst[1]]

    def test_requires_test_traces(self, synthesizer):
        records = synthesizer.service_instances(web_profile(), 2, test_weeks=0)
        with pytest.raises(ValueError):
            predictability_report(records)
