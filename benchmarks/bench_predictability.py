"""Predictability validation: does the training average forecast the test
week?  (The Sec. 3.3/5.1 premise, quantified.)

The placement is derived from the Eq.-4 averaged training traces and
deployed against the future.  This benchmark scores that implicit forecast
on every instance of each datacenter: low MAPE and small peak-time error
mean the "strong day-of-the-week patterns" assumption holds and placement
decisions transfer.
"""

import pytest

from repro.analysis import experiments as E
from repro.analysis.report import format_percent, format_table
from repro.traces import predictability_report


def _run(full_scale):
    return {
        name: predictability_report(E.get_datacenter(name, **full_scale).records)
        for name in E.DATACENTER_NAMES
    }


@pytest.mark.benchmark(group="predictability")
def test_predictability(benchmark, emit_report, full_scale):
    reports = benchmark.pedantic(_run, args=(full_scale,), rounds=1, iterations=1)

    rows = [
        [
            name,
            format_percent(report.mean_mape),
            format_percent(report.mean_abs_peak_error),
            f"{report.mean_peak_time_error_minutes:.0f} min",
        ]
        for name, report in reports.items()
    ]
    table = format_table(
        ["DC", "mean MAPE", "mean |peak error|", "mean peak-time error"],
        rows,
        title="Week-ahead predictability of the synthetic fleets (train avg -> test week)",
    )
    emit_report("predictability", table)

    for name, report in reports.items():
        # The weekly-periodicity premise: errors stay small.
        assert report.mean_mape < 0.30
        assert report.mean_abs_peak_error < 0.20
