"""Telemetry fault injectors: dirty data, made to order.

Production power telemetry is nothing like the three weeks of clean
per-minute readings the paper assumes (Sec. 3.3): sensors drop out, stick at
their last reading, emit wild spikes, and drift off the sampling grid.  The
injectors here synthesise exactly those pathologies on top of clean traces
so the repair pipeline (:mod:`repro.faults.repair`) and the chaos harness
(:mod:`repro.faults.harness`) can prove the pipeline degrades gracefully.

Faulted data lives in a :class:`RawTelemetry` — a deliberately permissive
container (NaNs, negatives, and off-grid timestamps allowed) that the strict
:class:`~repro.traces.traceset.TraceSet` would reject.  The only way back to
the clean world is an explicit repair step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..traces.grid import TimeGrid
from ..traces.traceset import TraceSet


@dataclass
class RawTelemetry:
    """Un-sanitised telemetry: a trace matrix that may contain garbage.

    Unlike :class:`TraceSet`, values may be NaN (sensor dropout), negative
    (glitching sensors), or arbitrarily large (spikes), and ``grid`` may sit
    at an offset that no clean grid would accept.  Use
    :func:`repro.faults.repair.repair_telemetry` to get a :class:`TraceSet`
    back.
    """

    grid: TimeGrid
    ids: List[str]
    matrix: np.ndarray

    def __post_init__(self) -> None:
        self.matrix = np.asarray(self.matrix, dtype=np.float64)
        if self.matrix.ndim != 2:
            raise ValueError(f"matrix must be 2-D, got shape {self.matrix.shape}")
        if self.matrix.shape != (len(self.ids), self.grid.n_samples):
            raise ValueError(
                f"matrix shape {self.matrix.shape} inconsistent with "
                f"{len(self.ids)} ids x {self.grid.n_samples} samples"
            )
        self.ids = list(self.ids)

    @classmethod
    def from_traceset(cls, traces: TraceSet) -> "RawTelemetry":
        return cls(traces.grid, list(traces.ids), traces.matrix.copy())

    def copy(self) -> "RawTelemetry":
        return RawTelemetry(self.grid, list(self.ids), self.matrix.copy())

    def missing_mask(self) -> np.ndarray:
        """Boolean mask of samples that carry no usable reading."""
        return ~np.isfinite(self.matrix)

    def missing_fraction(self) -> float:
        return float(self.missing_mask().mean())


def _pick_rows(
    n_rows: int, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """At least one, at most all rows, sampled without replacement."""
    count = max(1, int(round(fraction * n_rows)))
    return rng.choice(n_rows, size=min(count, n_rows), replace=False)


@dataclass(frozen=True)
class SensorDropout:
    """Contiguous NaN gaps: the sensor (or its collector) went silent.

    Each affected trace receives ``gaps_per_trace`` runs of ``gap_samples``
    consecutive NaNs at random positions.
    """

    fraction_of_traces: float = 0.25
    gap_samples: int = 12
    gaps_per_trace: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.fraction_of_traces <= 1:
            raise ValueError("fraction_of_traces must be in (0, 1]")
        if self.gap_samples <= 0 or self.gaps_per_trace <= 0:
            raise ValueError("gap_samples and gaps_per_trace must be positive")

    def apply(self, telemetry: RawTelemetry, rng: np.random.Generator) -> RawTelemetry:
        out = telemetry.copy()
        n_samples = out.grid.n_samples
        gap = min(self.gap_samples, n_samples)
        for row in _pick_rows(len(out.ids), self.fraction_of_traces, rng):
            for _ in range(self.gaps_per_trace):
                start = int(rng.integers(0, max(1, n_samples - gap + 1)))
                out.matrix[row, start : start + gap] = np.nan
        return out


@dataclass(frozen=True)
class StuckSensor:
    """Stuck-at faults: the sensor repeats its last reading for a while.

    Dangerous precisely because the values look plausible — only the
    unnatural flatness gives them away.
    """

    fraction_of_traces: float = 0.2
    stuck_samples: int = 24

    def __post_init__(self) -> None:
        if not 0 < self.fraction_of_traces <= 1:
            raise ValueError("fraction_of_traces must be in (0, 1]")
        if self.stuck_samples <= 1:
            raise ValueError("stuck_samples must exceed 1")

    def apply(self, telemetry: RawTelemetry, rng: np.random.Generator) -> RawTelemetry:
        out = telemetry.copy()
        n_samples = out.grid.n_samples
        run = min(self.stuck_samples, n_samples)
        for row in _pick_rows(len(out.ids), self.fraction_of_traces, rng):
            start = int(rng.integers(0, max(1, n_samples - run + 1)))
            out.matrix[row, start : start + run] = out.matrix[row, start]
        return out


@dataclass(frozen=True)
class PowerSpike:
    """Single-sample spikes far above any physical reading.

    Each affected sample is replaced by ``magnitude`` times the trace's
    robust ceiling (95th percentile), the classic ADC/transmission glitch.
    """

    fraction_of_traces: float = 0.5
    spikes_per_trace: int = 3
    magnitude: float = 8.0

    def __post_init__(self) -> None:
        if not 0 < self.fraction_of_traces <= 1:
            raise ValueError("fraction_of_traces must be in (0, 1]")
        if self.spikes_per_trace <= 0:
            raise ValueError("spikes_per_trace must be positive")
        if self.magnitude <= 1:
            raise ValueError("magnitude must exceed 1")

    def apply(self, telemetry: RawTelemetry, rng: np.random.Generator) -> RawTelemetry:
        out = telemetry.copy()
        n_samples = out.grid.n_samples
        for row in _pick_rows(len(out.ids), self.fraction_of_traces, rng):
            finite = out.matrix[row][np.isfinite(out.matrix[row])]
            ceiling = float(np.percentile(finite, 95)) if finite.size else 1.0
            level = max(ceiling, 1e-6) * self.magnitude
            cols = rng.integers(0, n_samples, size=self.spikes_per_trace)
            out.matrix[row, cols] = level
        return out


@dataclass(frozen=True)
class NegativeGlitch:
    """Sign-flipped readings: a power sensor reporting negative draw."""

    fraction_of_traces: float = 0.1
    glitches_per_trace: int = 2

    def __post_init__(self) -> None:
        if not 0 < self.fraction_of_traces <= 1:
            raise ValueError("fraction_of_traces must be in (0, 1]")
        if self.glitches_per_trace <= 0:
            raise ValueError("glitches_per_trace must be positive")

    def apply(self, telemetry: RawTelemetry, rng: np.random.Generator) -> RawTelemetry:
        out = telemetry.copy()
        for row in _pick_rows(len(out.ids), self.fraction_of_traces, rng):
            cols = rng.integers(0, out.grid.n_samples, size=self.glitches_per_trace)
            out.matrix[row, cols] = -np.abs(out.matrix[row, cols])
        return out


@dataclass(frozen=True)
class GridMisalignment:
    """Clock skew: every timestamp is off the canonical grid by an offset.

    Models a collector whose clock drifted — the readings are real but taken
    ``offset_minutes`` after the grid says they were.  Repair realigns by
    interpolating back onto the canonical grid.
    """

    offset_minutes: int = 3

    def __post_init__(self) -> None:
        if self.offset_minutes == 0:
            raise ValueError("offset_minutes of zero is not a misalignment")

    def apply(self, telemetry: RawTelemetry, rng: np.random.Generator) -> RawTelemetry:
        out = telemetry.copy()
        out.grid = TimeGrid(
            out.grid.start_minute + self.offset_minutes,
            out.grid.step_minutes,
            out.grid.n_samples,
        )
        return out


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, seeded bundle of telemetry faults.

    Applying the same plan to the same telemetry is fully deterministic:
    each fault draws from a child RNG derived from ``(seed, position)``.
    """

    faults: Tuple[object, ...] = field(default=())
    seed: int = 0

    def apply(self, telemetry) -> RawTelemetry:
        """Run every fault in order over ``telemetry`` (TraceSet or raw)."""
        if isinstance(telemetry, TraceSet):
            telemetry = RawTelemetry.from_traceset(telemetry)
        out = telemetry.copy()
        for position, fault in enumerate(self.faults):
            rng = np.random.default_rng([self.seed, position])
            out = fault.apply(out, rng)
        return out

    def __len__(self) -> int:
        return len(self.faults)


def dirty_copy(traces: TraceSet, plan: FaultPlan) -> RawTelemetry:
    """Convenience: inject ``plan`` into a clean trace set."""
    return plan.apply(traces)
