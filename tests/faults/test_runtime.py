"""Unit tests for runtime faults and the emergency capping fallback."""

import numpy as np
import pytest

from repro.faults import (
    ChaosReshapingRuntime,
    ConversionFaultModel,
    FailureEvent,
    ServerFailureSchedule,
)
from repro.reshaping import (
    ConversionPolicy,
    FleetDescription,
    ReshapingRuntime,
    ThrottleBoostPolicy,
)
from repro.sim import DemandTrace, DVFSModel, ServerPowerModel
from repro.traces import TimeGrid


@pytest.fixture
def grid():
    return TimeGrid.for_days(2, step_minutes=60)


@pytest.fixture
def demand(grid):
    hours = grid.hours_of_day()
    shape = 0.35 + 0.5 * np.exp(2.0 * (np.cos(2 * np.pi * (hours - 14) / 24) - 1))
    return DemandTrace(grid, shape * 100.0)


def make_fleet(budget_watts=45_000.0):
    return FleetDescription(
        n_lc=100,
        n_batch=40,
        lc_model=ServerPowerModel(90, 240),
        batch_model=ServerPowerModel(150, 235),
        budget_watts=budget_watts,
    )


def make_runtime(budget_watts=45_000.0, **kwargs):
    return ChaosReshapingRuntime(
        make_fleet(budget_watts),
        ConversionPolicy(conversion_threshold=0.85),
        throttle=ThrottleBoostPolicy(),
        dvfs=DVFSModel(),
        **kwargs,
    )


class TestFailureSchedule:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            FailureEvent(start_index=-1, duration_samples=1, n_servers=1)
        with pytest.raises(ValueError):
            FailureEvent(start_index=0, duration_samples=0, n_servers=1)
        with pytest.raises(ValueError):
            FailureEvent(start_index=0, duration_samples=1, n_servers=0)
        with pytest.raises(ValueError):
            FailureEvent(start_index=0, duration_samples=1, n_servers=1, pool="gpu")

    def test_lost_servers_window(self):
        schedule = ServerFailureSchedule(
            events=(
                FailureEvent(start_index=2, duration_samples=3, n_servers=5),
                FailureEvent(
                    start_index=4, duration_samples=2, n_servers=2, pool="batch"
                ),
            )
        )
        lc, batch = schedule.lost_servers(8)
        np.testing.assert_array_equal(lc, [0, 0, 5, 5, 5, 0, 0, 0])
        np.testing.assert_array_equal(batch, [0, 0, 0, 0, 2, 2, 0, 0])
        assert schedule.downtime_server_steps(8) == 15 + 4

    def test_event_clipped_at_trace_end(self):
        schedule = ServerFailureSchedule(
            events=(FailureEvent(start_index=6, duration_samples=10, n_servers=1),)
        )
        lc, _ = schedule.lost_servers(8)
        assert lc.sum() == 2

    def test_random_schedule_deterministic(self, grid):
        a = ServerFailureSchedule.random(grid, n_lc=100, n_batch=40, seed=3)
        b = ServerFailureSchedule.random(grid, n_lc=100, n_batch=40, seed=3)
        assert a == b

    def test_random_schedule_scales_with_rate(self, grid):
        quiet = ServerFailureSchedule.random(
            grid, n_lc=100, n_batch=40, events_per_week=0.0, seed=1
        )
        busy = ServerFailureSchedule.random(
            grid, n_lc=100, n_batch=40, events_per_week=50.0, seed=1
        )
        assert len(quiet.events) == 0
        assert len(busy.events) > 0


class TestConversionFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConversionFaultModel(latency_steps=-1)
        with pytest.raises(ValueError):
            ConversionFaultModel(failure_prob=1.0)
        with pytest.raises(ValueError):
            ConversionFaultModel(max_retries=-1)

    def test_no_faults_is_identity(self):
        target = np.array([0.0, 5.0, 5.0, 2.0, 8.0, 0.0])
        realized, log = ConversionFaultModel().realize(
            target, np.random.default_rng(0)
        )
        np.testing.assert_array_equal(realized, target)
        assert log.n_aborted == 0
        assert log.delayed_server_steps == 0.0

    def test_realized_never_exceeds_target(self):
        rng = np.random.default_rng(1)
        target = np.abs(np.cumsum(rng.normal(0, 3, 200)))
        model = ConversionFaultModel(latency_steps=2, failure_prob=0.4)
        realized, _ = model.realize(target, np.random.default_rng(2))
        assert (realized <= target + 1e-12).all()

    def test_latency_delays_upward_transition(self):
        target = np.array([0.0, 10.0, 10.0, 10.0, 10.0, 10.0])
        realized, log = ConversionFaultModel(latency_steps=2).realize(
            target, np.random.default_rng(0)
        )
        np.testing.assert_array_equal(realized, [0, 0, 0, 10, 10, 10])
        assert log.n_transitions == 1
        assert log.delayed_server_steps == 20.0

    def test_downward_is_immediate(self):
        target = np.array([10.0, 0.0, 0.0])
        realized, _ = ConversionFaultModel(latency_steps=4).realize(
            target, np.random.default_rng(0)
        )
        np.testing.assert_array_equal(realized, [10, 0, 0])

    def test_certain_failure_aborts(self):
        target = np.concatenate([[0.0], np.full(20, 10.0)])
        model = ConversionFaultModel(failure_prob=0.99, max_retries=1)
        realized, log = model.realize(target, np.random.default_rng(3))
        assert log.n_aborted >= 1
        assert realized[-1] == 0.0


class TestChaosRuntimeParity:
    def test_defaults_reproduce_parent(self, demand):
        """No faults + generous budget == the vanilla Sec. 4 runtime."""
        fleet = make_fleet()
        policy = ConversionPolicy(conversion_threshold=0.85)
        parent = ReshapingRuntime(fleet, policy)
        chaos = ChaosReshapingRuntime(fleet, policy)
        expected = parent.run_conversion(demand, 20)
        result = chaos.run_conversion_chaos(demand, 20)
        assert not result.recovery.engaged
        np.testing.assert_allclose(
            result.scenario.total_power, expected.total_power
        )
        np.testing.assert_allclose(result.scenario.lc_served, expected.lc_served)

    def test_failures_increase_drops(self, grid, demand):
        big_outage = ServerFailureSchedule(
            events=(
                FailureEvent(start_index=10, duration_samples=12, n_servers=40),
            )
        )
        clean = make_runtime().run_conversion_chaos(demand, 10)
        hurt = make_runtime(failures=big_outage).run_conversion_chaos(demand, 10)
        assert (
            hurt.scenario.dropped_fraction() >= clean.scenario.dropped_fraction()
        )
        assert hurt.recovery.failure_downtime_server_steps == 40 * 12

    def test_flaky_conversions_logged(self, demand):
        runtime = make_runtime(
            conversion_faults=ConversionFaultModel(latency_steps=2, failure_prob=0.3),
            seed=7,
        )
        result = runtime.run_conversion_chaos(demand, 20)
        log = result.recovery.conversion_lc
        assert log is not None
        assert log.n_transitions > 0


class TestRecovery:
    def test_fallback_restores_power_safety(self, demand):
        runtime = make_runtime(budget_watts=28_000.0)
        result = runtime.run_conversion_chaos(demand, 10)
        recovery = result.recovery
        assert recovery.engaged
        assert recovery.overload_steps_before > 0
        assert recovery.overload_steps_after == 0
        assert result.scenario.overload_steps() == 0
        assert not recovery.trips_after
        assert result.power_safe()
        assert recovery.capping is not None
        # The raw (pre-recovery) scenario is preserved for inspection.
        assert result.raw.overload_steps() == recovery.overload_steps_before

    def test_no_engagement_under_budget(self, demand):
        result = make_runtime().run_conversion_chaos(demand, 10)
        assert not result.recovery.engaged
        assert result.scenario is result.raw

    def test_throttle_boost_chaos_recovered(self, demand):
        result = make_runtime(budget_watts=28_000.0).run_throttle_boost_chaos(
            demand, 10
        )
        assert result.scenario.overload_steps() == 0
        assert result.power_safe()
