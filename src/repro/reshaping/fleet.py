"""Deriving a reshaping fleet description from a placed datacenter.

Bridges the placement world (instance records, power views, budgets) to the
reshaping runtime's aggregate view: how many LC and Batch servers exist,
what their per-server power models look like, and what the LC demand signal
is, all estimated from the synthetic telemetry itself.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..sim.demand import DemandTrace, demand_at_target_load
from ..sim.power_model import ServerPowerModel
from ..traces.instance import InstanceRecord, ServiceKind
from ..traces.series import PowerTrace
from .runtime import FleetDescription


def split_by_kind(
    records: Sequence[InstanceRecord],
) -> Tuple[List[InstanceRecord], List[InstanceRecord], List[InstanceRecord]]:
    """Partition records into (LC, Batch, other)."""
    lc = [r for r in records if r.kind == ServiceKind.LATENCY_CRITICAL]
    batch = [r for r in records if r.kind == ServiceKind.BATCH]
    other = [
        r
        for r in records
        if r.kind not in (ServiceKind.LATENCY_CRITICAL, ServiceKind.BATCH)
    ]
    return lc, batch, other


def estimate_server_model(
    records: Sequence[InstanceRecord],
    *,
    gamma: float = 3.0,
    use_test: bool = True,
    full_load_stat: str = "peak",
) -> ServerPowerModel:
    """Fit a linear idle/peak server model from a group's traces.

    Idle is estimated as the mean trace valley across the group.  The
    full-load draw uses ``full_load_stat``:

    * ``"peak"`` — mean of trace peaks; right for LC servers whose peak
      corresponds to full load;
    * ``"mean"`` — mean of trace means; right for batch servers, which run
      "fully loaded" at their typical draw all the time (their trace peaks
      are noise excursions, not a different operating point).
    """
    if not records:
        raise ValueError("cannot estimate a model from zero records")
    if full_load_stat not in ("peak", "mean"):
        raise ValueError(f"unknown full_load_stat {full_load_stat!r}")
    traces = [
        (r.test_trace if use_test and r.test_trace is not None else r.training_trace)
        for r in records
    ]
    idle = float(np.mean([t.valley() for t in traces]))
    if full_load_stat == "peak":
        full = float(np.mean([t.peak() for t in traces]))
    else:
        full = float(np.mean([t.mean() for t in traces]))
    if full <= idle:
        full = idle + 1.0
    return ServerPowerModel(idle_watts=idle, peak_watts=full, gamma=gamma)


def aggregate_trace(
    records: Sequence[InstanceRecord], *, use_test: bool = True
) -> Optional[PowerTrace]:
    """Aggregate power trace of a group (None for an empty group)."""
    if not records:
        return None
    traces = [
        (r.test_trace if use_test and r.test_trace is not None else r.training_trace)
        for r in records
    ]
    return PowerTrace.aggregate(traces)


def describe_fleet(
    records: Sequence[InstanceRecord],
    budget_watts: float,
    *,
    use_test: bool = True,
) -> FleetDescription:
    """Build a :class:`FleetDescription` for the reshaping runtime."""
    lc, batch, other = split_by_kind(records)
    if not lc:
        raise ValueError("datacenter has no latency-critical instances")
    return FleetDescription(
        n_lc=len(lc),
        n_batch=len(batch),
        lc_model=estimate_server_model(lc, use_test=use_test),
        batch_model=(
            estimate_server_model(batch, use_test=use_test, full_load_stat="mean")
            if batch
            else ServerPowerModel(150.0, 240.0)
        ),
        budget_watts=budget_watts,
        other_power=aggregate_trace(other, use_test=use_test),
    )


def derive_demand(
    records: Sequence[InstanceRecord],
    *,
    peak_load: float = 0.85,
    use_test: bool = True,
) -> DemandTrace:
    """LC demand for the evaluation (or training) week.

    Shaped like the LC fleet's aggregate power and calibrated so the
    original fleet runs at ``peak_load`` per server at peak (a production
    fleet is sized to run hot but safe).
    """
    lc, _, _ = split_by_kind(records)
    if not lc:
        raise ValueError("datacenter has no latency-critical instances")
    aggregate = aggregate_trace(lc, use_test=use_test)
    assert aggregate is not None
    return demand_at_target_load(aggregate, len(lc), peak_load=peak_load)
