"""Unit tests for conversion-threshold learning."""

import numpy as np
import pytest

from repro.reshaping import ThresholdPolicy, learn_conversion_threshold
from repro.sim import DemandTrace
from repro.traces import TimeGrid


@pytest.fixture
def grid():
    return TimeGrid(0, 60, 48)


class TestThresholdPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(percentile=0)
        with pytest.raises(ValueError):
            ThresholdPolicy(headroom=0.9)
        with pytest.raises(ValueError):
            ThresholdPolicy(ceiling=1.5)


class TestLearning:
    def test_percentile_of_load(self, grid):
        demand = DemandTrace(grid, np.linspace(0, 8, 48))
        threshold = learn_conversion_threshold(
            demand, 10, ThresholdPolicy(percentile=100.0)
        )
        assert threshold == pytest.approx(0.8)

    def test_ceiling_caps(self, grid):
        demand = DemandTrace(grid, np.full(48, 20.0))
        threshold = learn_conversion_threshold(demand, 10)
        assert threshold == 1.0

    def test_headroom_pads(self, grid):
        demand = DemandTrace(grid, np.full(48, 5.0))
        base = learn_conversion_threshold(
            demand, 10, ThresholdPolicy(percentile=100.0)
        )
        padded = learn_conversion_threshold(
            demand, 10, ThresholdPolicy(percentile=100.0, headroom=1.1)
        )
        assert padded == pytest.approx(base * 1.1)

    def test_zero_demand_rejected(self, grid):
        demand = DemandTrace(grid, np.zeros(48))
        with pytest.raises(ValueError):
            learn_conversion_threshold(demand, 10)

    def test_requires_servers(self, grid):
        demand = DemandTrace(grid, np.ones(48))
        with pytest.raises(ValueError):
            learn_conversion_threshold(demand, 0)
