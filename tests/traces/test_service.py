"""Unit tests for S-trace construction (Eq. 5) and top-consumer ranking."""

import pytest

from repro.traces import (
    InstanceRecord,
    PowerTrace,
    ServiceInstance,
    TimeGrid,
    build_service_traces,
    extract_basis_traces,
    service_power_trace,
    top_power_consumers,
    total_energy_by_service,
)


@pytest.fixture
def week():
    return TimeGrid.for_weeks(1, step_minutes=6 * 60)


def record(service, level, index=0, week_grid=None):
    return InstanceRecord(
        instance=ServiceInstance(f"{service}-{index}", service),
        training_trace=PowerTrace.constant(week_grid, level),
    )


class TestServiceTrace:
    def test_mean_of_instances(self, week):
        records = [record("web", 10, 0, week), record("web", 30, 1, week)]
        s_trace = service_power_trace(records)
        assert s_trace.mean() == pytest.approx(20.0)

    def test_rejects_mixed_services(self, week):
        with pytest.raises(ValueError):
            service_power_trace([record("web", 1, 0, week), record("db", 1, 0, week)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            service_power_trace([])

    def test_build_all(self, week):
        records = [
            record("web", 10, 0, week),
            record("db", 5, 0, week),
            record("db", 15, 1, week),
        ]
        traces = build_service_traces(records)
        assert set(traces) == {"web", "db"}
        assert traces["db"].mean() == pytest.approx(10.0)


class TestRanking:
    def test_energy_by_service(self, week):
        records = [record("web", 10, 0, week), record("db", 30, 0, week)]
        energy = total_energy_by_service(records)
        assert energy["db"] == pytest.approx(3 * energy["web"])

    def test_top_consumers_order(self, week):
        records = [
            record("small", 1, 0, week),
            record("big", 100, 0, week),
            record("mid", 10, 0, week),
        ]
        assert top_power_consumers(records, 2) == ["big", "mid"]

    def test_top_clamps(self, week):
        records = [record("only", 1, 0, week)]
        assert top_power_consumers(records, 10) == ["only"]

    def test_top_rejects_nonpositive(self, week):
        with pytest.raises(ValueError):
            top_power_consumers([record("x", 1, 0, week)], 0)

    def test_tie_break_by_name(self, week):
        records = [record("beta", 5, 0, week), record("alpha", 5, 0, week)]
        assert top_power_consumers(records, 2) == ["alpha", "beta"]


class TestBasis:
    def test_extract_basis(self, week):
        records = [
            record("web", 10, i, week) for i in range(3)
        ] + [record("db", 50, 0, week)]
        basis = extract_basis_traces(records, 2)
        assert basis.ids == ["db", "web"]  # db has more total energy? 50 vs 30
        assert basis["web"].mean() == pytest.approx(10.0)

    def test_basis_is_traceset_on_same_grid(self, week, synthesizer):
        records = synthesizer.service_instances(
            __import__("repro.traces", fromlist=["web_profile"]).web_profile(), 3
        )
        basis = extract_basis_traces(records, 5)
        assert len(basis) == 1
        assert basis.grid.n_samples == records[0].training_trace.grid.n_samples
