"""Percentile bands across a fleet of traces — the view behind Figure 6.

Figure 6 plots, for each service, bands like "p45-p55" across all servers
hosting that service at every timestamp.  :func:`percentile_bands` computes
exactly that: per-timestamp percentiles over a set of instance traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .traceset import TraceSet

#: The band edges used in Figure 6 (symmetric pairs around the median).
FIGURE6_BANDS: Tuple[Tuple[int, int], ...] = (
    (5, 95),
    (15, 85),
    (25, 75),
    (35, 65),
    (45, 55),
)


@dataclass(frozen=True)
class PercentileBand:
    """One percentile band: per-timestamp lower and upper envelopes."""

    lower_percentile: int
    upper_percentile: int
    lower: np.ndarray
    upper: np.ndarray

    @property
    def label(self) -> str:
        return f"p{self.lower_percentile}-p{self.upper_percentile}"

    def width(self) -> np.ndarray:
        """Per-timestamp band width (a spread/heterogeneity measure)."""
        return self.upper - self.lower

    def mean_width(self) -> float:
        return float(self.width().mean())


def percentile_bands(
    traces: TraceSet,
    bands: Sequence[Tuple[int, int]] = FIGURE6_BANDS,
) -> List[PercentileBand]:
    """Per-timestamp percentile bands over a fleet of traces.

    Parameters
    ----------
    traces:
        The instance traces of one service (rows) on a shared grid.
    bands:
        ``(lower, upper)`` percentile pairs; defaults to Figure 6's bands.
    """
    results: List[PercentileBand] = []
    for low, high in bands:
        if not 0 <= low < high <= 100:
            raise ValueError(f"invalid percentile band ({low}, {high})")
        lower = np.percentile(traces.matrix, low, axis=0)
        upper = np.percentile(traces.matrix, high, axis=0)
        results.append(PercentileBand(low, high, lower, upper))
    return results


def diurnal_range(traces: TraceSet) -> float:
    """Peak-to-valley swing of the service's median trace, normalised to peak.

    ~0 for flat services (hadoop), large for user-facing ones (web).
    """
    median = np.percentile(traces.matrix, 50, axis=0)
    peak = float(median.max())
    if peak == 0:
        return 0.0
    return float((median.max() - median.min()) / peak)


def band_summary(traces: TraceSet) -> Dict[str, float]:
    """Scalar summary of a service's Figure-6 panel.

    Returns the median peak/valley, the diurnal swing, and the mean width of
    the p5-p95 band (instance-level heterogeneity).
    """
    median = np.percentile(traces.matrix, 50, axis=0)
    p5 = np.percentile(traces.matrix, 5, axis=0)
    p95 = np.percentile(traces.matrix, 95, axis=0)
    peak = float(median.max())
    return {
        "median_peak": peak,
        "median_valley": float(median.min()),
        "diurnal_swing": diurnal_range(traces),
        "p5_p95_mean_width": float((p95 - p5).mean()),
        "heterogeneity": float((p95 - p5).mean() / peak) if peak else 0.0,
    }
