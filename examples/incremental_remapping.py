"""Incremental de-fragmentation under a migration budget (Sec. 3.6).

A full fleet re-placement means migrating almost every service instance —
operationally expensive.  SmoothOperator's adaptation loop instead finds the
most fragmented power node (lowest asynchrony score), evicts its
worst-fitting instance (lowest *differential* asynchrony score), and swaps
it with an instance from another node, accepting only swaps that improve
both nodes.  Each swap costs exactly two instance migrations.

This example starts from a legacy, service-grouped placement and shows how
much of the full optimiser's benefit a bounded number of swaps recovers.

Run:  python examples/workload_drift.py
"""

from repro.analysis import format_percent, format_table
from repro.baselines import oblivious_placement
from repro.core import (
    PlacementConfig,
    RemapConfig,
    RemappingEngine,
    WorkloadAwarePlacer,
    node_asynchrony_scores,
)
from repro.infra import Level, NodePowerView, build_topology, ocp_spec
from repro.traces import (
    TraceSet,
    TraceSynthesizer,
    cache_profile,
    db_profile,
    hadoop_profile,
    media_profile,
    web_profile,
)


def main() -> None:
    topology = build_topology(
        ocp_spec(
            "legacy",
            suites=2,
            msbs_per_suite=1,
            sbs_per_msb=2,
            rpps_per_sb=2,
            racks_per_rpp=2,
            servers_per_rack=10,
        )
    )
    synthesizer = TraceSynthesizer(weeks=2, step_minutes=30, seed=11)
    fleet = synthesizer.fleet(
        [
            (web_profile(), 48),
            (cache_profile(), 28),
            (db_profile(), 28),
            (hadoop_profile(), 16),
            (media_profile(), 24),
        ],
        test_weeks=0,
    )
    traces = TraceSet.from_traces(
        {r.instance_id: r.training_trace for r in fleet}
    )

    legacy = oblivious_placement(fleet, topology)
    legacy_peaks = NodePowerView(topology, legacy, traces).sum_of_peaks(Level.RPP)

    optimal = WorkloadAwarePlacer(PlacementConfig(seed=0)).place(fleet, topology)
    optimal_peaks = NodePowerView(topology, optimal.assignment, traces).sum_of_peaks(
        Level.RPP
    )
    achievable = legacy_peaks - optimal_peaks

    rows = []
    for budget in (5, 15, 30, 60, 120):
        engine = RemappingEngine(
            RemapConfig(
                level=Level.RPP,
                max_swaps=budget,
                candidate_nodes=7,
                candidate_instances=24,
            )
        )
        result = engine.run(legacy, traces)
        peaks = NodePowerView(topology, result.assignment, traces).sum_of_peaks(
            Level.RPP
        )
        scores = node_asynchrony_scores(result.assignment, traces, Level.RPP)
        recovered = (legacy_peaks - peaks) / achievable if achievable > 0 else 0.0
        rows.append(
            [
                f"{budget} swaps (used {result.n_swaps})",
                f"{peaks:.0f}",
                format_percent(1 - peaks / legacy_peaks),
                format_percent(recovered),
                f"{min(scores.values()):.3f}",
            ]
        )
    rows.append(
        [
            "full re-placement",
            f"{optimal_peaks:.0f}",
            format_percent(1 - optimal_peaks / legacy_peaks),
            "100.0%",
            f"{min(node_asynchrony_scores(optimal.assignment, traces, Level.RPP).values()):.3f}",
        ]
    )

    print(
        format_table(
            [
                "migration budget",
                "RPP sum-of-peaks W",
                "reduction vs legacy",
                "of full benefit",
                "min node asynchrony",
            ],
            rows,
            title=(
                "Incremental de-fragmentation of a legacy placement "
                f"(legacy: {legacy_peaks:.0f} W of RPP peaks)"
            ),
        )
    )


if __name__ == "__main__":
    main()
