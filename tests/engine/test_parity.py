"""Golden parity: the engine reproduces the legacy runtimes bit-for-bit.

``golden.json`` was captured from the pre-refactor ``ReshapingRuntime`` /
``ChaosReshapingRuntime`` / ``run_chaos_suite`` code paths.  Every compare
here is exact (``==`` on floats): the refactor moved code between modules,
it must not change a single bit of any result.
"""

import pytest

from conftest import (
    SMALL,
    chaos_fingerprint,
    make_demand,
    make_runtime_parts,
    scenario_fingerprint,
)
from repro.engine import Engine, ScenarioSpec, chaos_spec, run_many
from repro.faults import run_chaos_suite
from repro.faults.harness import DEFAULT_SUITE
from repro.reshaping import ReshapingRuntime

RESHAPING_MODES = ("pre", "lc_only", "conversion", "throttle_boost")
CHAOS_NAMES = tuple(scenario.name for scenario in DEFAULT_SUITE)


# ----------------------------------------------------------------------
# reshaping modes: legacy shim entry points and the engine directly
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def shim_results():
    """The exact calls ``_golden_gen.reshaping_goldens`` made, via the shim."""
    fleet, conversion, throttle, dvfs = make_runtime_parts()
    runtime = ReshapingRuntime(fleet, conversion, throttle=throttle, dvfs=dvfs)
    demand = make_demand()
    return {
        "pre": runtime.run_pre(demand),
        "lc_only": runtime.run_lc_only(demand.scaled(1.1), 10),
        "conversion": runtime.run_conversion(demand.scaled(1.1), 10),
        "throttle_boost": runtime.run_throttle_boost(demand.scaled(1.15), 10, 5),
    }


@pytest.fixture(scope="module")
def engine_results():
    """The same four scenarios, driven through ``Engine.run`` directly."""
    fleet, conversion, throttle, dvfs = make_runtime_parts()
    engine = Engine(fleet, conversion, throttle=throttle, dvfs=dvfs)
    demand = make_demand()

    def run(mode, demand, **kwargs):
        spec = ScenarioSpec(
            mode=mode,
            fleet=fleet,
            demand=demand,
            conversion=conversion,
            throttle=throttle,
            dvfs=dvfs,
            **kwargs,
        )
        return engine.run(spec).result

    return {
        "pre": run("pre", demand),
        "lc_only": run("lc_only", demand.scaled(1.1), extra_servers=10),
        "conversion": run("conversion", demand.scaled(1.1), extra_servers=10),
        "throttle_boost": run(
            "throttle_boost",
            demand.scaled(1.15),
            extra_servers=10,
            extra_throttle_funded=5,
        ),
    }


@pytest.mark.parametrize("mode", RESHAPING_MODES)
def test_shim_matches_golden(shim_results, golden, mode):
    assert scenario_fingerprint(shim_results[mode]) == golden["reshaping"][mode]


@pytest.mark.parametrize("mode", RESHAPING_MODES)
def test_engine_matches_golden(engine_results, golden, mode):
    assert scenario_fingerprint(engine_results[mode]) == golden["reshaping"][mode]


# ----------------------------------------------------------------------
# chaos harness: all ten scenarios, end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def chaos_outcomes():
    outcomes = run_chaos_suite(dc_name="DC1", **SMALL)
    return {outcome.scenario.name: outcome for outcome in outcomes}


def test_chaos_suite_covers_golden(chaos_outcomes, golden):
    assert set(chaos_outcomes) == set(golden["chaos"])


@pytest.mark.parametrize("name", CHAOS_NAMES)
def test_chaos_matches_golden(chaos_outcomes, golden, name):
    assert chaos_fingerprint(chaos_outcomes[name]) == golden["chaos"][name]


# ----------------------------------------------------------------------
# determinism: worker count must not change a single bit
# ----------------------------------------------------------------------
def test_run_many_parallel_matches_serial(golden):
    specs = [chaos_spec(name, dc_name="DC1", **SMALL) for name in CHAOS_NAMES]
    serial = run_many(specs, workers=1)
    parallel = run_many(specs, workers=4)
    assert [chaos_fingerprint(a.result) for a in serial] == [
        chaos_fingerprint(a.result) for a in parallel
    ]
    # ... and both match the pre-refactor goldens.
    for artifacts in parallel:
        fingerprint = chaos_fingerprint(artifacts.result)
        assert fingerprint == golden["chaos"][artifacts.result.scenario.name]
