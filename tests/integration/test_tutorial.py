"""The tutorial's code blocks must execute, in order, exactly as written."""

import pathlib
import re

import pytest

TUTORIAL = pathlib.Path(__file__).resolve().parents[2] / "docs" / "TUTORIAL.md"


@pytest.mark.slow
def test_tutorial_blocks_execute(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    blocks = re.findall(
        r"```python\n(.*?)```", TUTORIAL.read_text(), re.S
    )
    assert len(blocks) >= 10
    namespace = {}
    for index, block in enumerate(blocks):
        exec(compile(block, f"<tutorial block {index}>", "exec"), namespace)
    # The walk-through really did the work it claims.
    assert namespace["plan"].total_extra >= 0
    assert namespace["report"].lc_energy_shed >= 0
    assert (tmp_path / "artifacts" / "placement.json").exists()
