"""Property-based tests for the simulation substrate."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sim import DVFSModel, ServerPowerModel, batch_throughput, dispatch


def nonneg_arrays(n=24, max_value=100.0):
    return hnp.arrays(
        dtype=np.float64,
        shape=n,
        elements=st.floats(0, max_value, allow_nan=False, allow_infinity=False),
    )


class TestDispatchProperties:
    @given(nonneg_arrays(), nonneg_arrays(max_value=50), st.floats(0.1, 1.0))
    def test_conservation(self, demand, servers, guard):
        outcome = dispatch(demand, servers, guard)
        assert np.allclose(outcome.served + outcome.dropped, demand)

    @given(nonneg_arrays(), nonneg_arrays(max_value=50), st.floats(0.1, 1.0))
    def test_guard_respected(self, demand, servers, guard):
        outcome = dispatch(demand, servers, guard)
        assert np.all(outcome.per_server_load <= guard + 1e-9)

    @given(nonneg_arrays(), st.floats(1, 50), st.floats(0.1, 1.0))
    def test_more_servers_never_serve_less(self, demand, base_servers, guard):
        few = dispatch(demand, np.full(24, base_servers), guard)
        many = dispatch(demand, np.full(24, base_servers * 2), guard)
        assert many.total_served() >= few.total_served() - 1e-9


class TestPowerModelProperties:
    @given(
        st.floats(0, 300, allow_nan=False),
        st.floats(0, 300, allow_nan=False),
        st.floats(0, 1),
        st.floats(0, 1),
    )
    def test_power_monotone_in_load(self, idle, swing, load_a, load_b):
        model = ServerPowerModel(idle, idle + swing + 1.0)
        lo, hi = sorted([load_a, load_b])
        assert model.power(lo) <= model.power(hi) + 1e-9

    @given(st.floats(0.5, 1.5), st.floats(0.5, 1.5))
    def test_power_monotone_in_freq(self, freq_a, freq_b):
        model = ServerPowerModel(100, 200, gamma=3.0)
        lo, hi = sorted([freq_a, freq_b])
        assert model.power(1.0, lo) <= model.power(1.0, hi) + 1e-9

    @given(st.floats(0, 1))
    def test_power_bounded(self, load):
        model = ServerPowerModel(100, 200)
        assert 100 - 1e-9 <= model.power(load) <= 200 + 1e-9


class TestBatchProperties:
    @given(nonneg_arrays(max_value=50), nonneg_arrays(max_value=2.0))
    def test_throughput_nonnegative(self, servers, freq):
        dvfs = DVFSModel(min_freq=0.5, max_freq=1.5)
        outcome = batch_throughput(servers, np.maximum(freq, 0.01), dvfs)
        assert np.all(outcome.throughput >= 0)

    @given(st.floats(0.5, 1.0), st.floats(1.0, 1.5))
    def test_throughput_monotone_in_freq(self, low, high):
        dvfs = DVFSModel(min_freq=0.5, max_freq=1.5, boost_efficiency=0.5)
        servers = np.full(4, 10.0)
        a = batch_throughput(servers, np.full(4, low), dvfs)
        b = batch_throughput(servers, np.full(4, high), dvfs)
        assert b.total() >= a.total() - 1e-9
