"""Unit tests for the power tree model."""

import pytest

from repro.infra import Level, PowerNode, PowerTopology, TopologyError


def build_small_tree():
    root = PowerNode("dc", Level.DATACENTER)
    suite = root.add_child(PowerNode("dc/suite0", Level.SUITE))
    suite.add_child(PowerNode("dc/suite0/rpp0", Level.RPP, capacity=4))
    suite.add_child(PowerNode("dc/suite0/rpp1", Level.RPP, capacity=4))
    return PowerTopology(root)


class TestPowerNode:
    def test_empty_name_rejected(self):
        with pytest.raises(TopologyError):
            PowerNode("", Level.RPP)

    def test_negative_budget_rejected(self):
        with pytest.raises(TopologyError):
            PowerNode("x", Level.RPP, budget_watts=-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(TopologyError):
            PowerNode("x", Level.RACK, capacity=0)

    def test_add_child_sets_parent(self):
        root = PowerNode("r", Level.DATACENTER)
        child = root.add_child(PowerNode("r/c", Level.SUITE))
        assert child.parent is root
        assert root.children == [child]

    def test_double_parent_rejected(self):
        a = PowerNode("a", Level.DATACENTER)
        b = PowerNode("b", Level.DATACENTER)
        child = PowerNode("c", Level.SUITE)
        a.add_child(child)
        with pytest.raises(TopologyError):
            b.add_child(child)

    def test_is_leaf(self):
        root = PowerNode("r", Level.DATACENTER)
        assert root.is_leaf
        root.add_child(PowerNode("r/c", Level.SUITE))
        assert not root.is_leaf

    def test_iter_subtree_preorder(self):
        topo = build_small_tree()
        names = [node.name for node in topo.root.iter_subtree()]
        assert names == ["dc", "dc/suite0", "dc/suite0/rpp0", "dc/suite0/rpp1"]

    def test_path_from_root(self):
        topo = build_small_tree()
        leaf = topo.node("dc/suite0/rpp1")
        assert [n.name for n in leaf.path_from_root()] == [
            "dc",
            "dc/suite0",
            "dc/suite0/rpp1",
        ]


class TestPowerTopology:
    def test_duplicate_names_rejected(self):
        root = PowerNode("dc", Level.DATACENTER)
        root.add_child(PowerNode("x", Level.SUITE))
        root.add_child(PowerNode("x", Level.SUITE))
        with pytest.raises(TopologyError):
            PowerTopology(root)

    def test_node_lookup(self):
        topo = build_small_tree()
        assert topo.node("dc/suite0").level == Level.SUITE
        assert "dc/suite0" in topo
        assert "nope" not in topo

    def test_unknown_node(self):
        with pytest.raises(TopologyError):
            build_small_tree().node("ghost")

    def test_levels_in_order(self):
        topo = build_small_tree()
        assert topo.levels() == [Level.DATACENTER, Level.SUITE, Level.RPP]

    def test_nodes_at_level(self):
        topo = build_small_tree()
        assert len(topo.nodes_at_level(Level.RPP)) == 2

    def test_nodes_at_missing_level(self):
        with pytest.raises(TopologyError):
            build_small_tree().nodes_at_level(Level.MSB)

    def test_leaves(self):
        topo = build_small_tree()
        assert topo.leaf_names() == ["dc/suite0/rpp0", "dc/suite0/rpp1"]

    def test_parent_of(self):
        topo = build_small_tree()
        assert topo.parent_of("dc/suite0/rpp0").name == "dc/suite0"
        assert topo.parent_of("dc") is None

    def test_total_leaf_capacity(self):
        assert build_small_tree().total_leaf_capacity() == 8

    def test_unbounded_capacity(self):
        root = PowerNode("dc", Level.DATACENTER)
        root.add_child(PowerNode("dc/r", Level.RPP))
        assert PowerTopology(root).total_leaf_capacity() is None

    def test_describe(self):
        text = build_small_tree().describe()
        assert "1 datacenter" in text
        assert "2 rpps" in text
