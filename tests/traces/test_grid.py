"""Unit tests for TimeGrid."""

import numpy as np
import pytest

from repro.traces import (
    MINUTES_PER_DAY,
    MINUTES_PER_WEEK,
    GridMismatchError,
    TimeGrid,
)


class TestConstruction:
    def test_for_days(self):
        grid = TimeGrid.for_days(2, step_minutes=60)
        assert grid.n_samples == 48
        assert grid.duration_minutes == 2 * MINUTES_PER_DAY

    def test_for_weeks(self):
        grid = TimeGrid.for_weeks(1, step_minutes=10)
        assert grid.n_samples == 1008
        assert grid.duration_minutes == MINUTES_PER_WEEK

    def test_rejects_non_divisor_step(self):
        with pytest.raises(ValueError):
            TimeGrid.for_days(1, step_minutes=7)

    def test_rejects_zero_days(self):
        with pytest.raises(ValueError):
            TimeGrid.for_days(0)

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            TimeGrid(0, 0, 10)
        with pytest.raises(ValueError):
            TimeGrid(0, -5, 10)

    def test_rejects_bad_n_samples(self):
        with pytest.raises(ValueError):
            TimeGrid(0, 10, 0)


class TestProperties:
    def test_samples_per_day(self):
        assert TimeGrid.for_days(1, step_minutes=30).samples_per_day == 48

    def test_samples_per_week(self):
        assert TimeGrid.for_weeks(1, step_minutes=60).samples_per_week == 168

    def test_n_days_and_weeks(self):
        grid = TimeGrid.for_weeks(2, step_minutes=60)
        assert grid.n_days == 14
        assert grid.n_weeks == 2

    def test_covers_whole_days(self):
        assert TimeGrid.for_days(3, step_minutes=30).covers_whole_days()
        assert not TimeGrid(0, 30, 47).covers_whole_days()

    def test_covers_whole_weeks(self):
        assert TimeGrid.for_weeks(2, step_minutes=30).covers_whole_weeks()
        assert not TimeGrid.for_days(5, step_minutes=30).covers_whole_weeks()


class TestTimestamps:
    def test_timestamps_shape_and_spacing(self):
        grid = TimeGrid(100, 15, 8)
        ts = grid.timestamps()
        assert ts.shape == (8,)
        assert ts[0] == 100
        assert np.all(np.diff(ts) == 15)

    def test_hours_of_day_range(self):
        grid = TimeGrid.for_days(2, step_minutes=30)
        hours = grid.hours_of_day()
        assert hours.min() >= 0
        assert hours.max() < 24
        # Midnight of day 2 wraps to hour 0.
        assert hours[48] == 0.0

    def test_days_of_week(self):
        grid = TimeGrid.for_weeks(1, step_minutes=60 * 24)
        assert list(grid.days_of_week()) == [0, 1, 2, 3, 4, 5, 6]

    def test_index_at(self):
        grid = TimeGrid(0, 10, 100)
        assert grid.index_at(0) == 0
        assert grid.index_at(990) == 99

    def test_index_at_off_grid(self):
        grid = TimeGrid(0, 10, 100)
        with pytest.raises(ValueError):
            grid.index_at(5)

    def test_index_at_outside(self):
        grid = TimeGrid(0, 10, 100)
        with pytest.raises(IndexError):
            grid.index_at(1000)


class TestWeekViews:
    def test_week_view_shape(self):
        grid = TimeGrid.for_weeks(3, step_minutes=60)
        assert grid.week_view_shape() == (3, 168)

    def test_week_view_requires_whole_weeks(self):
        with pytest.raises(ValueError):
            TimeGrid.for_days(10, step_minutes=60).week_view_shape()

    def test_one_week(self):
        grid = TimeGrid.for_weeks(3, step_minutes=60)
        one = grid.one_week()
        assert one.n_samples == 168
        assert one.step_minutes == 60
        assert one.start_minute == grid.start_minute


class TestEquality:
    def test_require_same_passes(self):
        a = TimeGrid(0, 10, 100)
        b = TimeGrid(0, 10, 100)
        a.require_same(b)  # no raise

    def test_require_same_raises(self):
        a = TimeGrid(0, 10, 100)
        b = TimeGrid(0, 20, 100)
        with pytest.raises(GridMismatchError):
            a.require_same(b)
