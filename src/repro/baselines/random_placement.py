"""Random placement baseline.

A uniformly random spread is a surprisingly strong de-fragmenter (it mixes
services by accident) and provides a sanity floor for the workload-aware
placer: SmoothOperator should beat random, and random should beat oblivious.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..infra.assignment import Assignment
from ..infra.topology import PowerTopology
from ..traces.instance import InstanceRecord
from .oblivious import fill_leaves_in_order


def random_placement(
    records: Sequence[InstanceRecord],
    topology: PowerTopology,
    *,
    seed: int = 0,
) -> Assignment:
    """Shuffle the fleet uniformly, then pack leaves in tree order."""
    if not records:
        raise ValueError("nothing to place")
    rng = np.random.default_rng(seed)
    order = list(records)
    permutation = rng.permutation(len(order))
    shuffled = [order[i] for i in permutation]
    return fill_leaves_in_order(shuffled, topology)


def round_robin_placement(
    records: Sequence[InstanceRecord],
    topology: PowerTopology,
) -> Assignment:
    """Deal instances across leaves in service-sorted order.

    A trace-blind but spread-aware heuristic: consecutive instances of one
    service land on *different* leaves, so it already defeats the grossest
    fragmentation without knowing anything about power.
    """
    if not records:
        raise ValueError("nothing to place")
    leaves = topology.leaves()
    ordered = sorted(records, key=lambda r: (r.service, r.instance_id))
    mapping: Dict[str, str] = {}
    used = {leaf.name: 0 for leaf in leaves}
    cursor = 0
    for record in ordered:
        for _ in range(len(leaves)):
            leaf = leaves[cursor % len(leaves)]
            cursor += 1
            if leaf.capacity is None or used[leaf.name] < leaf.capacity:
                mapping[record.instance_id] = leaf.name
                used[leaf.name] += 1
                break
        else:
            raise ValueError("ran out of leaf capacity during round-robin fill")
    return Assignment(topology, mapping)
