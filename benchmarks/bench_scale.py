"""Scaling characterisation: placement cost vs fleet size.

The placer's hot path is O(levels × n × |B| × T) scoring plus balanced
k-means per node; this benchmark measures wall-clock for the full pipeline
(synthesis excluded) at three fleet sizes, confirming near-linear scaling —
the property that made SmoothOperator deployable across fleets of tens of
thousands of machines.
"""

import time

import pytest

from repro.analysis.report import format_table
from repro.core import PlacementConfig, WorkloadAwarePlacer
from repro.datasets import build_datacenter, dc3_spec
from repro.obs import update_bench

SIZES = (480, 960, 1920)


def _time_placement(n_instances: int) -> float:
    dc = build_datacenter(dc3_spec(n_instances=n_instances), weeks=3, step_minutes=10)
    placer = WorkloadAwarePlacer(PlacementConfig(seed=0))
    started = time.perf_counter()
    placer.place(dc.records, dc.topology)
    return time.perf_counter() - started


def _run():
    return {n: _time_placement(n) for n in SIZES}


@pytest.mark.benchmark(group="scale")
def test_placement_scaling(benchmark, emit_report):
    timings = benchmark.pedantic(_run, rounds=1, iterations=1)

    base_n = SIZES[0]
    base_t = timings[base_n]
    rows = [
        [
            f"{n} instances",
            f"{seconds:.2f}s",
            f"{seconds / base_t:.2f}x",
            f"{n / base_n:.0f}x",
        ]
        for n, seconds in timings.items()
    ]
    emit_report(
        "scale",
        format_table(
            ["fleet", "placement time", "time ratio", "size ratio"],
            rows,
            title="Placement wall-clock vs fleet size (DC3 mix, 10-min traces)",
        ),
    )
    update_bench(
        "pipeline",
        "scale",
        {
            "workload": {"datacenter": "DC3", "step_minutes": 10, "weeks": 3},
            "placement_wall_s": {str(n): seconds for n, seconds in timings.items()},
        },
    )

    # Sub-quadratic scaling: 4x the fleet must cost well under 16x the time.
    assert timings[SIZES[-1]] <= base_t * (SIZES[-1] / base_n) ** 2 * 0.8
    # And the full-scale fleet places in interactive time.
    assert timings[1920] < 60.0
