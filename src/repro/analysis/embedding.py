"""Dimensionality reduction for visualising the asynchrony-score space.

Figure 8 projects clustered instances from the |B|-dimensional asynchrony
space onto 2-D with t-SNE (van der Maaten & Hinton 2008).  This module is a
compact exact (O(n²)) t-SNE — adequate for the suite-scale point counts the
figure uses — plus a PCA helper used both for initialisation and as a cheap
alternative projection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


def pca_project(points: np.ndarray, n_components: int = 2) -> np.ndarray:
    """Project onto the top principal components (centered, unscaled)."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be 2-D")
    if not 1 <= n_components <= points.shape[1]:
        n_components = min(max(1, n_components), points.shape[1])
    centered = points - points.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:n_components].T


@dataclass(frozen=True)
class TSNEConfig:
    """Hyper-parameters of the exact t-SNE optimiser.

    ``learning_rate=None`` selects ``max(n / early_exaggeration, 10)``, the
    standard adaptive choice that keeps small embeddings from exploding.
    """

    perplexity: float = 30.0
    n_iter: int = 400
    learning_rate: Optional[float] = None
    early_exaggeration: float = 6.0
    exaggeration_iters: int = 80
    momentum_initial: float = 0.5
    momentum_final: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.perplexity <= 1:
            raise ValueError("perplexity must exceed 1")
        if self.n_iter <= 0 or self.exaggeration_iters < 0:
            raise ValueError("iteration counts must be positive")


def tsne_embed(points: np.ndarray, config: Optional[TSNEConfig] = None) -> np.ndarray:
    """Exact t-SNE embedding of ``points`` into 2-D.

    Deterministic for a fixed config (the init comes from PCA plus seeded
    jitter).  Complexity O(n² ) per iteration — use for up to a few thousand
    points.
    """
    config = config if config is not None else TSNEConfig()
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be 2-D")
    n = points.shape[0]
    if n < 3:
        raise ValueError("t-SNE needs at least 3 points")
    perplexity = min(config.perplexity, (n - 1) / 3.0)

    p = _joint_probabilities(points, perplexity)
    rng = np.random.default_rng(config.seed)
    embedding = pca_project(points, 2)
    scale = np.abs(embedding).max()
    if scale > 0:
        embedding = embedding / scale * 1e-2
    embedding = embedding + rng.normal(0.0, 1e-4, size=(n, 2))

    learning_rate = config.learning_rate
    if learning_rate is None:
        learning_rate = max(n / config.early_exaggeration, 10.0)

    velocity = np.zeros_like(embedding)
    gains = np.ones_like(embedding)
    for iteration in range(config.n_iter):
        exaggerate = iteration < config.exaggeration_iters
        p_eff = p * config.early_exaggeration if exaggerate else p
        grad = _gradient(embedding, p_eff)
        momentum = (
            config.momentum_initial
            if iteration < config.exaggeration_iters
            else config.momentum_final
        )
        same_sign = np.sign(grad) == np.sign(velocity)
        gains = np.where(same_sign, gains * 0.8, gains + 0.2)
        gains = np.maximum(gains, 0.01)
        velocity = momentum * velocity - learning_rate * gains * grad
        embedding = embedding + velocity
        embedding = embedding - embedding.mean(axis=0)
    return embedding


def _joint_probabilities(points: np.ndarray, perplexity: float) -> np.ndarray:
    """Symmetrised conditional probabilities with per-point sigma search."""
    n = points.shape[0]
    sq = ((points[:, np.newaxis, :] - points[np.newaxis, :, :]) ** 2).sum(axis=2)
    target_entropy = np.log(perplexity)
    conditional = np.zeros((n, n))
    for i in range(n):
        distances = sq[i].copy()
        distances[i] = np.inf
        beta_low, beta_high = 1e-20, 1e20
        beta = 1.0
        for _ in range(64):
            weights = np.exp(-distances * beta)
            total = weights.sum()
            if total <= 0:
                beta /= 2
                continue
            probabilities = weights / total
            nonzero = probabilities[probabilities > 0]
            entropy = -np.sum(nonzero * np.log(nonzero))
            if abs(entropy - target_entropy) < 1e-5:
                break
            if entropy > target_entropy:
                beta_low = beta
                beta = beta * 2 if beta_high >= 1e20 else (beta + beta_high) / 2
            else:
                beta_high = beta
                beta = beta / 2 if beta_low <= 1e-20 else (beta + beta_low) / 2
        conditional[i] = weights / max(total, 1e-300)
        conditional[i, i] = 0.0
    joint = (conditional + conditional.T) / (2.0 * n)
    return np.maximum(joint, 1e-12)


def _gradient(embedding: np.ndarray, p: np.ndarray) -> np.ndarray:
    """KL-divergence gradient with the Student-t low-dimensional kernel."""
    diff = embedding[:, np.newaxis, :] - embedding[np.newaxis, :, :]
    sq = (diff * diff).sum(axis=2)
    inv = 1.0 / (1.0 + sq)
    np.fill_diagonal(inv, 0.0)
    q = inv / max(inv.sum(), 1e-300)
    q = np.maximum(q, 1e-12)
    factor = (p - q) * inv
    return 4.0 * (factor[:, :, np.newaxis] * diff).sum(axis=1)
