"""Power aggregation over the tree: per-node traces, peaks, fragmentation.

Given a topology, a placement, and the fleet's traces, a
:class:`NodePowerView` computes the aggregate power trace at every node
bottom-up (each node's trace is the sum of its children's).  All of the
paper's fragmentation metrics — per-level sums of peaks (Sec. 2.2 metric 1),
power/energy slack (metric 2) — read off this view.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .. import obs
from ..traces.series import PowerTrace
from ..traces.traceset import TraceSet
from .assignment import Assignment
from .topology import PowerNode, PowerTopology


class NodePowerView:
    """Aggregate power at every node of a tree under one placement.

    Beyond the one-shot bottom-up build, the view is an incremental index:
    :meth:`apply_delta` ingests a
    :class:`~repro.engine.delta.FleetDelta` and recomputes only the dirty
    subtree — each dirty node with the *identical* expression the full
    build uses, so the incrementally maintained aggregates (and the cached
    per-node peaks) stay bit-identical to a from-scratch rebuild.
    """

    def __init__(
        self,
        topology: PowerTopology,
        assignment: Assignment,
        traces: TraceSet,
    ) -> None:
        if assignment.topology is not topology:
            # Allow equal-but-distinct topologies only if node names agree.
            theirs = {n.name for n in assignment.topology.nodes()}
            ours = {n.name for n in topology.nodes()}
            if theirs != ours:
                raise ValueError("assignment refers to a different topology")
        missing = [i for i in assignment.instance_ids() if i not in traces]
        if missing:
            raise ValueError(f"assignment places instances without traces: {missing[:5]}")
        self.topology = topology
        self.assignment = assignment
        self.traces = traces
        self._node_values: Dict[str, np.ndarray] = {}
        # Live membership for the incremental path.  After deltas these
        # lists are authoritative; ``self.assignment`` keeps the as-built
        # placement (materialize the current one via
        # :meth:`materialized_assignment`).
        self._leaf_members: Dict[str, List[str]] = {
            leaf.name: list(assignment.instances_on_leaf(leaf.name))
            for leaf in topology.leaves()
        }
        self._leaf_of: Dict[str, str] = {
            instance_id: leaf_name
            for leaf_name, members in self._leaf_members.items()
            for instance_id in members
        }
        self._depth: Dict[str, int] = {}
        self._peaks: Dict[str, float] = {}
        self._version = 0
        self._last_dirty: Tuple[str, ...] = ()
        self._index_depths(topology.root, 0)
        self._aggregate(topology.root)

    def _index_depths(self, node: PowerNode, depth: int) -> None:
        self._depth[node.name] = depth
        for child in node.children:
            self._index_depths(child, depth + 1)

    def _aggregate(self, node: PowerNode) -> np.ndarray:
        for child in node.children:
            self._aggregate(child)
        total = self._compute_node(node)
        self._node_values[node.name] = total
        return total

    def _compute_node(self, node: PowerNode) -> np.ndarray:
        """One node's aggregate from current members / child aggregates.

        The single source of truth for both the full build and the
        incremental path — sharing the expression is what makes the two
        bit-identical.
        """
        if node.is_leaf:
            members = self._leaf_members[node.name]
            if members:
                # Fancy-index the TraceSet matrix and reduce once — far
                # fewer Python-level passes than adding row by row.
                rows = [self.traces.index_of(i) for i in members]
                return self.traces.matrix[rows].sum(axis=0)
            return np.zeros(self.traces.grid.n_samples)
        return np.sum(
            [self._node_values[child.name] for child in node.children], axis=0
        )

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Number of deltas applied to this view."""
        return self._version

    @property
    def last_dirty(self) -> Tuple[str, ...]:
        """Node names dirtied (and refreshed) by the most recent delta."""
        return self._last_dirty

    def apply_delta(self, delta) -> List[str]:
        """Apply a :class:`~repro.engine.delta.FleetDelta` to the view.

        Updates the live membership, then recomputes exactly the dirty
        subtree — touched leaves from member rows, their ancestors from
        child aggregates, deepest first — and invalidates the cached peaks
        of those nodes.  Returns the dirty node names (root-first per
        touched leaf, first-touch order).
        """
        for move in delta.moves:
            instance_id = move.instance_id
            if move.src_leaf is not None:
                if self._leaf_of.get(instance_id) != move.src_leaf:
                    raise ValueError(
                        f"{instance_id!r} is not on leaf {move.src_leaf!r}"
                    )
                self._leaf_members[move.src_leaf].remove(instance_id)
                del self._leaf_of[instance_id]
            if move.dst_leaf is not None:
                if move.dst_leaf not in self._leaf_members:
                    raise KeyError(f"{move.dst_leaf!r} is not a leaf")
                if instance_id in self._leaf_of:
                    raise ValueError(f"{instance_id!r} is already placed")
                if instance_id not in self.traces:
                    raise ValueError(f"{instance_id!r} has no trace")
                self._leaf_members[move.dst_leaf].append(instance_id)
                self._leaf_of[instance_id] = move.dst_leaf
        touched = delta.touched_leaves(self._leaf_of)

        dirty: List[str] = []
        seen = set()
        for leaf_name in touched:
            for node in self.topology.node(leaf_name).path_from_root():
                if node.name not in seen:
                    seen.add(node.name)
                    dirty.append(node.name)
        # Children before parents: recompute deepest nodes first.
        for name in sorted(dirty, key=self._depth.__getitem__, reverse=True):
            node = self.topology.node(name)
            self._node_values[name] = self._compute_node(node)
            self._peaks.pop(name, None)
        self._version += 1
        self._last_dirty = tuple(dirty)
        obs.count("delta.view_nodes_recomputed", len(dirty))
        return dirty

    def member_ids(self, leaf_name: str) -> List[str]:
        """Current members of a leaf, in arrival order (a copy)."""
        if leaf_name not in self._leaf_members:
            raise KeyError(f"{leaf_name!r} is not a leaf")
        return list(self._leaf_members[leaf_name])

    def materialized_assignment(self) -> Assignment:
        """The current (post-delta) placement as an immutable Assignment.

        Leaves in topology order, members in arrival order — rebuilding a
        view from the result reproduces this view's state bit-for-bit.
        """
        mapping = {
            instance_id: leaf_name
            for leaf_name, members in self._leaf_members.items()
            for instance_id in members
        }
        return Assignment(self.topology, mapping)

    # ------------------------------------------------------------------
    def node_trace(self, node_name: str) -> PowerTrace:
        self.topology.node(node_name)  # validate
        return PowerTrace(self.traces.grid, self._node_values[node_name].copy())

    def node_peak(self, node_name: str) -> float:
        self.topology.node(node_name)
        try:
            return self._peaks[node_name]
        except KeyError:
            peak = float(self._node_values[node_name].max())
            self._peaks[node_name] = peak
            return peak

    def node_mean(self, node_name: str) -> float:
        self.topology.node(node_name)
        return float(self._node_values[node_name].mean())

    # ------------------------------------------------------------------
    # fragmentation metrics (Sec. 2.2)
    # ------------------------------------------------------------------
    def peaks_at_level(self, level: str) -> Dict[str, float]:
        return {
            node.name: self.node_peak(node.name)
            for node in self.topology.nodes_at_level(level)
        }

    def sum_of_peaks(self, level: str) -> float:
        """Σ over level nodes of each node's aggregate peak — metric 1."""
        return float(sum(self.peaks_at_level(level).values()))

    def sum_of_peaks_by_level(self) -> Dict[str, float]:
        return {level: self.sum_of_peaks(level) for level in self.topology.levels()}

    def node_percentile(self, node_name: str, q: float) -> float:
        """The ``q``-th percentile of the node's aggregate trace."""
        self.topology.node(node_name)
        return float(np.percentile(self._node_values[node_name], q))

    # ------------------------------------------------------------------
    # slack metrics (Sec. 2.2 Eq. 1-2; requires budgets on nodes)
    # ------------------------------------------------------------------
    def power_slack(self, node_name: str) -> np.ndarray:
        node = self.topology.node(node_name)
        if node.budget_watts is None:
            raise ValueError(f"node {node_name} has no budget assigned")
        return self.node_trace(node_name).power_slack(node.budget_watts)

    def energy_slack(self, node_name: str) -> float:
        node = self.topology.node(node_name)
        if node.budget_watts is None:
            raise ValueError(f"node {node_name} has no budget assigned")
        return self.node_trace(node_name).energy_slack(node.budget_watts)

    def utilization(self, node_name: str) -> float:
        """Mean power / budget at a node — fraction of budget doing work."""
        node = self.topology.node(node_name)
        if node.budget_watts is None:
            raise ValueError(f"node {node_name} has no budget assigned")
        if node.budget_watts == 0:
            return 0.0
        return self.node_mean(node_name) / node.budget_watts


def peak_reduction_by_level(
    before: NodePowerView, after: NodePowerView
) -> Dict[str, float]:
    """Fractional sum-of-peaks reduction per level (Figure 10's y-axis).

    Positive values mean ``after`` fragments less than ``before``.
    """
    reductions: Dict[str, float] = {}
    for level in before.topology.levels():
        peak_before = before.sum_of_peaks(level)
        peak_after = after.sum_of_peaks(level)
        if peak_before == 0:
            reductions[level] = 0.0
        else:
            reductions[level] = (peak_before - peak_after) / peak_before
    return reductions
