"""Per-power-node flight recorder: compact time series + precursor alerts.

The paper's argument lives inside the power tree — node-level utilization,
headroom, and budget-violation behaviour over time (Sec. 2-4).  This module
records exactly that during simulated runs: a :class:`FlightRecorder` keeps
one numpy ring buffer per ``(topology path, series)`` pair, so memory stays
bounded however long a scenario runs, and :func:`record_power` turns a
node's power trace + budget into the four canonical series

* ``utilization`` — power / budget;
* ``slack``       — budget - power (Eq. 1, instantaneous);
* ``headroom``    — budget - running peak (what is still provisionable);
* ``capped``      — min(power, budget) (what the node could actually draw),

emitting a :data:`~repro.obs.events.VIOLATION` event per contiguous
over-budget run and, via sliding-window trend **precursor detection**, an
:data:`~repro.obs.events.ADVISORY` event when utilization is heading for
the budget before it gets there.

Everything is a near-free no-op unless a recorder is installed with
:func:`recording` (and events only flow when an event log is installed).

Typical use::

    from repro.obs import events, telemetry

    with telemetry.recording() as recorder, events.recording() as log:
        run_scenario()
    print(recorder.summary())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from . import events as _events

__all__ = [
    "FlightRecorder",
    "Precursor",
    "PrecursorConfig",
    "RingBuffer",
    "detect_precursors",
    "get_recorder",
    "record",
    "record_power",
    "record_view",
    "recording",
]

#: Canonical per-node series names recorded by :func:`record_power`.
SERIES_NAMES: Tuple[str, ...] = ("utilization", "slack", "headroom", "capped")


class RingBuffer:
    """A fixed-capacity numpy ring buffer of float samples.

    Appends are O(1); :meth:`array` returns the retained window in
    chronological order.  ``n_total`` counts every sample ever written, so
    summaries can report how much history the window dropped.
    """

    __slots__ = ("capacity", "_data", "_pos", "_total")

    def __init__(self, capacity: int = 2048) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._data = np.empty(capacity, dtype=np.float64)
        self._pos = 0
        self._total = 0

    # ------------------------------------------------------------------
    def append(self, value: float) -> None:
        self._data[self._pos] = value
        self._pos = (self._pos + 1) % self.capacity
        self._total += 1

    def extend(self, values: np.ndarray) -> None:
        """Append a whole array (vectorised; only the tail can survive)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        n = len(values)
        if n == 0:
            return
        if n >= self.capacity:
            # Only the last ``capacity`` samples fit; realign to position 0.
            self._data[:] = values[n - self.capacity :]
            self._pos = 0
        else:
            first = min(n, self.capacity - self._pos)
            self._data[self._pos : self._pos + first] = values[:first]
            if first < n:
                self._data[: n - first] = values[first:]
            self._pos = (self._pos + n) % self.capacity
        self._total += n

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return min(self._total, self.capacity)

    @property
    def n_total(self) -> int:
        """Samples ever written (≥ ``len(self)`` once the window wraps)."""
        return self._total

    def array(self) -> np.ndarray:
        """The retained window, oldest sample first."""
        if self._total < self.capacity:
            return self._data[: self._pos].copy()
        return np.concatenate([self._data[self._pos :], self._data[: self._pos]])

    def last(self) -> float:
        if self._total == 0:
            raise ValueError("ring buffer is empty")
        return float(self._data[(self._pos - 1) % self.capacity])

    def summary(self) -> Dict[str, float]:
        """Moments of the retained window plus the total written count."""
        window = self.array()
        if len(window) == 0:
            return {"count": 0}
        return {
            "count": int(self._total),
            "retained": int(len(window)),
            "last": float(window[-1]),
            "min": float(window.min()),
            "max": float(window.max()),
            "mean": float(window.mean()),
        }


class FlightRecorder:
    """Ring-buffered time series keyed by ``(topology path, series name)``."""

    __slots__ = ("capacity", "_series")

    def __init__(self, capacity: int = 2048) -> None:
        self.capacity = capacity
        self._series: Dict[Tuple[str, str], RingBuffer] = {}

    # ------------------------------------------------------------------
    def buffer(self, path: str, name: str) -> RingBuffer:
        """The ring buffer for one series, created on first use."""
        key = (path, name)
        buffer = self._series.get(key)
        if buffer is None:
            buffer = self._series[key] = RingBuffer(self.capacity)
        return buffer

    def record(self, path: str, name: str, values) -> None:
        """Append a scalar or an array of samples to one node series."""
        buffer = self.buffer(path, name)
        if np.isscalar(values):
            buffer.append(float(values))
        else:
            buffer.extend(np.asarray(values, dtype=np.float64))

    # ------------------------------------------------------------------
    def paths(self) -> List[str]:
        """Distinct topology paths recorded so far, in first-seen order."""
        seen: List[str] = []
        for path, _ in self._series:
            if path not in seen:
                seen.append(path)
        return seen

    def names(self, path: str) -> List[str]:
        return [name for p, name in self._series if p == path]

    def series(self, path: str, name: str) -> np.ndarray:
        """The retained window of one series (KeyError if never recorded)."""
        return self._series[(path, name)].array()

    def summary(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """``{path: {series: window moments}}`` for everything recorded."""
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for (path, name), buffer in self._series.items():
            out.setdefault(path, {})[name] = buffer.summary()
        return out

    def to_dict(self) -> Dict[str, object]:
        return {"capacity": self.capacity, "nodes": self.summary()}


# ----------------------------------------------------------------------
# precursor detection: utilization trending toward the budget
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PrecursorConfig:
    """Sliding-window trend detection parameters.

    A precursor fires at step ``t`` when the node is *not yet* violating
    (``utilization < ceiling``) but either (a) the least-squares slope over
    the trailing ``window`` samples projects utilization crossing
    ``ceiling`` within ``horizon`` further samples, or (b) utilization has
    already entered the warning band ``>= warning_fraction * ceiling``.
    Consecutive firing steps collapse into one precursor (the run start).
    """

    window: int = 12
    horizon: int = 12
    ceiling: float = 1.0
    warning_fraction: float = 0.95

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("window must be at least 2 samples")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.ceiling <= 0:
            raise ValueError("ceiling must be positive")
        if not 0 < self.warning_fraction <= 1:
            raise ValueError("warning_fraction must be in (0, 1]")


@dataclass(frozen=True)
class Precursor:
    """One pre-violation finding on a utilization series."""

    index: int
    utilization: float
    slope_per_step: float
    projected: float
    reason: str  # "trend" or "warning_band"


def _rolling_slope(values: np.ndarray, window: int) -> np.ndarray:
    """Least-squares slope of each trailing window (vectorised).

    Entry ``t`` is the slope fit over ``values[t - window + 1 : t + 1]``;
    the first ``window - 1`` entries are zero (not enough history).
    """
    n = len(values)
    slopes = np.zeros(n)
    if n < window:
        return slopes
    x = np.arange(window, dtype=np.float64)
    x_mean = x.mean()
    x_var = float(((x - x_mean) ** 2).sum())
    kernel = (x - x_mean)[::-1]  # newest sample gets the largest weight
    # cov(x, y) over each trailing window via correlation with the centered
    # x kernel: sum_k (x_k - x̄) y_{t-window+1+k}.
    cov = np.convolve(values, kernel, mode="valid")
    slopes[window - 1 :] = cov / x_var
    return slopes


def detect_precursors(
    utilization: np.ndarray, config: Optional[PrecursorConfig] = None
) -> List[Precursor]:
    """Pre-violation findings over one node's utilization series."""
    config = config if config is not None else PrecursorConfig()
    utilization = np.asarray(utilization, dtype=np.float64)
    slopes = _rolling_slope(utilization, config.window)
    projected = utilization + slopes * config.horizon
    below = utilization < config.ceiling
    trending = below & (slopes > 0) & (projected >= config.ceiling)
    banded = below & (utilization >= config.warning_fraction * config.ceiling)
    firing = trending | banded
    precursors: List[Precursor] = []
    previous = False
    for index, flag in enumerate(firing):
        if flag and not previous:
            precursors.append(
                Precursor(
                    index=index,
                    utilization=float(utilization[index]),
                    slope_per_step=float(slopes[index]),
                    projected=float(projected[index]),
                    reason="trend" if trending[index] else "warning_band",
                )
            )
        previous = bool(flag)
    return precursors


# ----------------------------------------------------------------------
# the canonical per-node recording hook
# ----------------------------------------------------------------------
def record_power(
    path: str,
    power: np.ndarray,
    budget_watts: float,
    *,
    step_minutes: float = 1.0,
    source: str = "",
    precursors: Optional[PrecursorConfig] = None,
) -> None:
    """Record one node's power trace against its budget.

    Feeds the four canonical series into the active flight recorder, emits
    one ``violation`` event per contiguous over-budget run, and emits an
    ``advisory`` event per detected precursor.  A no-op when neither a
    recorder nor an event log is installed, so instrumented hot paths pay
    ~nothing by default.
    """
    recorder = _RECORDER
    log = _events.get_event_log()
    if recorder is None and log is None:
        return
    if budget_watts <= 0:
        return
    power = np.asarray(power, dtype=np.float64)
    utilization = power / budget_watts
    source = source or path

    if recorder is not None:
        recorder.record(path, "utilization", utilization)
        recorder.record(path, "slack", budget_watts - power)
        recorder.record(path, "headroom", budget_watts - np.maximum.accumulate(power))
        recorder.record(path, "capped", np.minimum(power, budget_watts))

    if log is None:
        return
    over = power > budget_watts + 1e-9
    if np.any(over):
        edges = np.flatnonzero(np.diff(np.concatenate([[0], over.view(np.int8), [0]])))
        for start, stop in zip(edges[::2], edges[1::2]):
            segment = power[start:stop]
            log.emit(
                _events.VIOLATION,
                severity="critical",
                source=source,
                node=path,
                start_index=int(start),
                duration_samples=int(stop - start),
                duration_minutes=float((stop - start) * step_minutes),
                peak_watts=float(segment.max()),
                peak_overload_watts=float(segment.max() - budget_watts),
                budget_watts=float(budget_watts),
            )
    for precursor in detect_precursors(utilization, precursors):
        log.emit(
            _events.ADVISORY,
            severity="advisory",
            source=source,
            node=path,
            index=precursor.index,
            utilization=precursor.utilization,
            slope_per_step=precursor.slope_per_step,
            projected_utilization=precursor.projected,
            reason=precursor.reason,
            budget_watts=float(budget_watts),
        )


def record_view(view, *, prefix: str = "", precursors: Optional[PrecursorConfig] = None) -> int:
    """Record every budgeted node of a :class:`~repro.infra.aggregation.NodePowerView`.

    Walks the topology, feeding each budgeted node's aggregate trace into
    :func:`record_power` keyed by the node's name (repo topologies use
    path-like names, e.g. ``"dc/suite0/rpp3"``).  Returns the number of
    nodes recorded; a cheap no-op (returning 0) when nothing is installed.
    """
    if _RECORDER is None and _events.get_event_log() is None:
        return 0
    recorded = 0
    step_minutes = view.traces.grid.step_minutes
    for node in view.topology.nodes():
        if node.budget_watts is None:
            continue
        path = f"{prefix}{node.name}"
        record_power(
            path,
            view._node_values[node.name],
            node.budget_watts,
            step_minutes=step_minutes,
            precursors=precursors,
        )
        recorded += 1
    return recorded


def record_delta(
    view,
    dirty_nodes,
    *,
    prefix: str = "",
    precursors: Optional[PrecursorConfig] = None,
) -> int:
    """Record only the nodes a delta dirtied, instead of the whole tree.

    The incremental companion of :func:`record_view`: after a
    :class:`~repro.engine.delta.FleetDelta` is applied to a view, feeding
    the flight recorder (and precursor/violation detection) only needs
    the refreshed aggregates — ``dirty_nodes`` is typically the view's
    ``last_dirty``.  Unbudgeted dirty nodes are skipped, like in
    :func:`record_view`.  Returns the number of nodes recorded; a cheap
    no-op (returning 0) when nothing is installed.
    """
    if _RECORDER is None and _events.get_event_log() is None:
        return 0
    recorded = 0
    step_minutes = view.traces.grid.step_minutes
    for name in dirty_nodes:
        node = view.topology.node(name)
        if node.budget_watts is None:
            continue
        record_power(
            f"{prefix}{node.name}",
            view._node_values[node.name],
            node.budget_watts,
            step_minutes=step_minutes,
            precursors=precursors,
        )
        recorded += 1
    return recorded


# ----------------------------------------------------------------------
# module-level API: a process-global active recorder
# ----------------------------------------------------------------------
_RECORDER: Optional[FlightRecorder] = None


def get_recorder() -> Optional[FlightRecorder]:
    """The currently installed flight recorder, if any."""
    return _RECORDER


def record(path: str, name: str, values) -> None:
    """Record into the active flight recorder (cheap no-op when none)."""
    recorder = _RECORDER
    if recorder is not None:
        recorder.record(path, name, values)


class recording:
    """Install a flight recorder as the process-global active recorder.

    ::

        with telemetry.recording() as recorder:
            run_scenario()
        print(recorder.summary())

    Nesting restores the previously active recorder on exit.
    """

    __slots__ = ("recorder", "_previous")

    def __init__(self, recorder: Optional[FlightRecorder] = None, *, capacity: int = 2048) -> None:
        self.recorder = recorder if recorder is not None else FlightRecorder(capacity)
        self._previous: Optional[FlightRecorder] = None

    def __enter__(self) -> FlightRecorder:
        global _RECORDER
        self._previous = _RECORDER
        _RECORDER = self.recorder
        return self.recorder

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _RECORDER
        _RECORDER = self._previous
        return False
