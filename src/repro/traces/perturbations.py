"""Trace perturbations: surges and outages.

The paper repeatedly leans on short-term workload uncertainty — "bursty
traffic due to power failure of neighboring datacenters" (Sec. 3.3), sudden
load changes shared across power nodes (Sec. 3.2) — as the regime where
placement quality turns into *power safety*.  These helpers inject such
events into trace sets so experiments can measure exactly that.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from .traceset import TraceSet


def window_mask(
    traces: TraceSet, start_hour: float, end_hour: float, *, days: Optional[Sequence[int]] = None
) -> np.ndarray:
    """Boolean per-sample mask for a daily hour window (optionally only on
    given days-of-week).  ``end_hour`` may wrap past midnight."""
    hours = traces.grid.hours_of_day()
    if start_hour <= end_hour:
        mask = (hours >= start_hour) & (hours < end_hour)
    else:
        mask = (hours >= start_hour) | (hours < end_hour)
    if days is not None:
        day_of_week = traces.grid.days_of_week()
        mask &= np.isin(day_of_week, list(days))
    return mask


def inject_surge(
    traces: TraceSet,
    instance_ids: Iterable[str],
    *,
    factor: float,
    start_hour: float,
    end_hour: float,
    days: Optional[Sequence[int]] = None,
) -> TraceSet:
    """Scale the *dynamic* power of the named instances during a window.

    Models a traffic surge (e.g. failover from a neighbouring region): the
    affected servers' draw above their own trace valley is multiplied by
    ``factor`` during the window.  Scaling above the idle floor rather than
    the whole trace keeps the idle physics intact.
    """
    if factor < 0:
        raise ValueError("factor cannot be negative")
    ids = list(instance_ids)
    missing = [i for i in ids if i not in traces]
    if missing:
        raise ValueError(f"unknown instances: {missing[:5]}")
    mask = window_mask(traces, start_hour, end_hour, days=days)
    matrix = traces.matrix.copy()
    for instance_id in ids:
        row = traces.index_of(instance_id)
        idle = matrix[row].min()
        dynamic = matrix[row] - idle
        matrix[row] = np.where(mask, idle + dynamic * factor, matrix[row])
    return TraceSet(traces.grid, list(traces.ids), matrix)


def inject_outage(
    traces: TraceSet,
    instance_ids: Iterable[str],
    *,
    start_index: int,
    duration_samples: int,
) -> TraceSet:
    """Zero the named instances' draw for a contiguous sample range.

    Models server/rack outages — useful for testing that analyses tolerate
    dead telemetry.
    """
    if duration_samples <= 0:
        raise ValueError("duration must be positive")
    stop = start_index + duration_samples
    if not 0 <= start_index < stop <= traces.grid.n_samples:
        raise ValueError("outage window outside the trace")
    ids = list(instance_ids)
    missing = [i for i in ids if i not in traces]
    if missing:
        raise ValueError(f"unknown instances: {missing[:5]}")
    matrix = traces.matrix.copy()
    for instance_id in ids:
        matrix[traces.index_of(instance_id), start_index:stop] = 0.0
    return TraceSet(traces.grid, list(traces.ids), matrix)
