"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "table1" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "SmoothOperator" in out
        assert "Power Routing" in out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--instances", "96"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "%" in out

    def test_fig10_small(self, capsys):
        assert main(["fig10", "--instances", "96"]) == 0
        out = capsys.readouterr().out
        assert "RPP" in out
        assert "extra servers" in out

    def test_safety_small(self, capsys):
        assert main(["safety", "--instances", "96"]) == 0
        out = capsys.readouterr().out
        assert "Power safety" in out
        assert "smoothoperator" in out

    def test_predictability_small(self, capsys):
        assert main(["predictability", "--instances", "96"]) == 0
        out = capsys.readouterr().out
        assert "MAPE" in out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_profile_small(self, capsys):
        assert main(["profile", "--instances", "96"]) == 0
        out = capsys.readouterr().out
        for stage in ("synthesize", "score", "cluster", "place", "remap"):
            assert stage in out
        assert "peak reduction" in out

    def test_profile_json(self, capsys):
        assert main(["profile", "--instances", "96", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        stages = {row["stage"] for row in payload["stages"]}
        for stage in ("synthesize", "score", "cluster", "place", "remap"):
            assert stage in stages
        assert payload["workload"]["instances"] == 96
        assert payload["spans"][0]["name"] == "profile"
        assert "counters" in payload["metrics"]

    def test_profile_json_schema(self, capsys):
        """The --json document's shape is a stable machine contract."""
        assert main(["profile", "--instances", "96", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "workload",
            "spans",
            "stages",
            "metrics",
            "peak_reduction",
        }
        assert set(payload["workload"]) == {
            "datacenter",
            "instances",
            "samples_per_trace",
            "swaps_accepted",
        }
        stages = {row["stage"] for row in payload["stages"]}
        assert {
            "synthesize",
            "score",
            "cluster",
            "place",
            "remap",
            "pipeline.evaluate",
        } <= stages
        for row in payload["stages"]:
            assert {"stage", "wall_s", "cpu_s", "calls"} <= set(row)
            assert row["wall_s"] >= 0.0
            assert row["calls"] >= 1
        assert set(payload["metrics"]) >= {"counters", "gauges"}
        # Per-level reductions are fractions keyed by known levels.
        assert set(payload["peak_reduction"]) <= {
            "datacenter",
            "suite",
            "msb",
            "sb",
            "rpp",
            "rack",
        }
        for value in payload["peak_reduction"].values():
            assert isinstance(value, float)
        # Span ids are present and unique (events join against them).
        seen = set()

        def walk(span):
            assert span["span_id"] not in seen
            seen.add(span["span_id"])
            for child in span.get("children", []):
                walk(child)

        for root in payload["spans"]:
            walk(root)


class TestMonitorCommand:
    def test_monitor_writes_correlated_event_log(self, capsys, tmp_path):
        """The tentpole acceptance check: monitor renders the per-level
        table and its JSONL log holds violation, conversion, and advisory
        events joined to spans."""
        events_path = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "monitor",
                    "--instances",
                    "96",
                    "--scenario",
                    "surge_overload",
                    "--events",
                    str(events_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "surge_overload" in out
        assert "max utilization" in out
        for level in ("suite", "msb", "sb", "rpp"):
            assert level in out

        lines = events_path.read_text().splitlines()
        assert lines
        entries = [json.loads(line) for line in lines]
        kinds = {entry["kind"] for entry in entries}
        assert {"violation", "conversion", "advisory"} <= kinds
        # Sequence numbers are monotonic and every event joins to a span.
        seqs = [entry["seq"] for entry in entries]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        for entry in entries:
            assert isinstance(entry["span_id"], int)
            assert entry["span_path"].startswith("chaos.scenario")

    def test_monitor_rejects_unknown_scenario(self, tmp_path):
        with pytest.raises(KeyError):
            main(
                [
                    "monitor",
                    "--instances",
                    "48",
                    "--scenario",
                    "not_a_scenario",
                    "--events",
                    str(tmp_path / "e.jsonl"),
                ]
            )
