"""Serial vs parallel chaos-suite execution → ``BENCH_engine.json``.

Runs the full named scenario suite through ``repro.engine.run_many`` twice
— once serially, once across a process pool — asserts the outcomes are
identical either way, and emits the wall times plus the measured speedup.
``tools/bench_compare.py`` gates the ``chaos_suite_parallel`` stage in CI:
on multi-CPU runners the pool must beat the serial pass by the configured
factor; on single-CPU hosts the speedup check is skipped (the numbers are
still recorded so the trajectory accrues).

Scale is deliberately small (override with ``BENCH_ENGINE_INSTANCES`` /
``BENCH_ENGINE_WORKERS``): the point is the executor overhead and the
speedup ratio, not the simulation itself.
"""

import os
import time

import pytest

from repro import obs
from repro.engine import chaos_spec, run_many, warm_pool
from repro.faults.harness import DEFAULT_SUITE

N_INSTANCES = int(os.environ.get("BENCH_ENGINE_INSTANCES", "96"))
STEP_MINUTES = 60
WEEKS = 2
WORKERS = int(os.environ.get("BENCH_ENGINE_WORKERS", "0")) or min(
    4, max(2, os.cpu_count() or 1)
)


def _specs():
    return [
        chaos_spec(
            scenario,
            dc_name="DC1",
            n_instances=N_INSTANCES,
            step_minutes=STEP_MINUTES,
            weeks=WEEKS,
        )
        for scenario in DEFAULT_SUITE
    ]


def _timed(specs, workers):
    start = time.perf_counter()
    artifacts = run_many(specs, workers=workers)
    return artifacts, time.perf_counter() - start


def _run():
    specs = _specs()
    # Warm the dataset caches first: the serial pass should not pay the
    # one-off synthesis cost the forked workers then inherit for free.
    run_many(specs[:1], workers=1)
    serial = _timed(specs, 1)
    # Spawn the persistent pool outside the timed region: its workers are
    # a once-per-process cost shared by every later batch, and forking now
    # hands them the warm dataset caches.
    warm_pool(WORKERS)
    obs.reset_report()
    parallel = _timed(specs, WORKERS)
    # The pooled pass records one ``run.many`` stage into the unified run
    # report; its imbalance/per-worker shape rides along in the BENCH doc.
    report = obs.build_report(include_spans=False)
    stage = report["stages"][-1] if report["stages"] else None
    return specs, serial, parallel, stage


@pytest.mark.benchmark(group="engine")
def test_chaos_suite_parallel_speedup(benchmark, emit_report):
    specs, (serial, serial_s), (parallel, parallel_s), stage = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    # Determinism: worker count must not change outcomes.
    assert len(serial) == len(parallel) == len(specs)
    for left, right in zip(serial, parallel):
        assert left.result.scenario.name == right.result.scenario.name
        assert left.result.passed == right.result.passed
        assert left.result.quality_chaos == right.result.quality_chaos

    cpu_count = os.cpu_count() or 1
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    workload = {
        "n_scenarios": len(specs),
        "n_instances": N_INSTANCES,
        "step_minutes": STEP_MINUTES,
        "weeks": WEEKS,
    }
    obs.update_bench("engine", "workload", workload)
    obs.update_bench(
        "engine",
        "stages",
        [
            {"stage": "chaos_suite_serial", "wall_s": serial_s, "calls": 1},
            {"stage": "chaos_suite_parallel", "wall_s": parallel_s, "calls": 1},
        ],
    )
    obs.update_bench(
        "engine",
        "parallel",
        {
            "workers": WORKERS,
            "cpu_count": cpu_count,
            "serial_wall_s": serial_s,
            "parallel_wall_s": parallel_s,
            "speedup": speedup,
            "imbalance": stage["imbalance"] if stage else None,
            "mean_queue_s": stage["mean_queue_s"] if stage else None,
            "per_worker": stage["per_worker"] if stage else {},
        },
    )

    emit_report(
        "engine_parallel",
        "\n".join(
            [
                "chaos suite: serial vs process pool",
                f"  scenarios         {len(specs)}",
                f"  instances         {N_INSTANCES}",
                f"  workers           {WORKERS} (host cpus: {cpu_count})",
                f"  serial wall       {serial_s:.3f}s",
                f"  parallel wall     {parallel_s:.3f}s",
                f"  speedup           {speedup:.2f}x",
                f"  task imbalance    "
                + (f"{stage['imbalance']:.2f}x" if stage else "-"),
            ]
        ),
    )

    # On a real multi-core host the pool must win; on a single CPU the
    # ratio is informational only (bench_compare applies the same rule).
    if cpu_count >= 2:
        assert speedup > 1.0, f"process pool slower than serial ({speedup:.2f}x)"
