"""Dynamic power profile reshaping: conversion + throttling/boosting (Sec. 4).

Simulates a datacenter's held-out week under the paper's scenarios:

* ``pre``            — original fleet, original traffic;
* ``lc_only``        — unlocked headroom filled with LC-specific servers;
* ``conversion``     — storage-disaggregated conversion servers that flip
  between Batch (off-peak) and LC (peak) based on the learned L_conv;
* ``throttle_boost`` — plus proactive batch throttling during LC-heavy
  hours (funding extra conversion servers) and boosting off-peak.

Run:  python examples/dynamic_reshaping.py [DC1|DC2|DC3]
"""

import sys

from repro.analysis import experiments as E
from repro.analysis import format_percent, format_table, sparkline


def main(name: str = "DC1") -> None:
    scale = dict(n_instances=480, step_minutes=10)
    study = E.run_reshaping_study(E.get_datacenter(name, **scale))
    comparison = study.comparison

    print(
        f"{name}: L_conv={study.conversion_threshold:.3f}, "
        f"conversion servers={study.extra_conversion}, "
        f"throttle-funded extras={study.extra_throttle_funded}\n"
    )

    rows = []
    for scenario in ("lc_only", "conversion", "throttle_boost"):
        result = comparison.scenarios[scenario]
        rows.append(
            [
                scenario,
                format_percent(comparison.lc_improvement(scenario)),
                format_percent(comparison.batch_improvement(scenario)),
                format_percent(result.dropped_fraction()),
                str(result.overload_steps()),
            ]
        )
    print(
        format_table(
            ["scenario", "LC gain", "Batch gain", "dropped", "overload steps"],
            rows,
            title="Throughput vs the pre-SmoothOperator datacenter (test week)",
        )
    )

    pre = comparison.pre
    tb = comparison.scenarios["throttle_boost"]
    print("\nper-LC-server load (test week):")
    print(f"  pre            {sparkline(pre.per_server_load)}")
    print(f"  throttle_boost {sparkline(tb.per_server_load)}")
    print("\nbatch throughput:")
    print(f"  pre            {sparkline(pre.batch_throughput)}")
    print(f"  throttle_boost {sparkline(tb.batch_throughput)}")
    print("\npower slack (budget - draw):")
    print(f"  pre            {sparkline(pre.power_slack())}")
    print(f"  throttle_boost {sparkline(tb.power_slack())}")
    print(
        "\nslack reduction from dynamic reshaping: "
        f"{format_percent(comparison.slack_reduction('throttle_boost', baseline='lc_only_matched'))}"
        " (vs static extra servers); "
        f"{format_percent(comparison.slack_reduction('throttle_boost'))} vs pre"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "DC1")
