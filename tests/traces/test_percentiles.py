"""Unit tests for percentile bands (Figure 6 machinery)."""

import numpy as np
import pytest

from repro.traces import (
    FIGURE6_BANDS,
    PowerTrace,
    TimeGrid,
    TraceSet,
    band_summary,
    diurnal_range,
    percentile_bands,
)


@pytest.fixture
def fleet():
    grid = TimeGrid(0, 60, 24)
    traces = {
        f"s{i}": PowerTrace.constant(grid, float(i)) for i in range(1, 11)
    }
    return TraceSet.from_traces(traces)


class TestBands:
    def test_default_bands_match_figure6(self, fleet):
        bands = percentile_bands(fleet)
        assert [(b.lower_percentile, b.upper_percentile) for b in bands] == list(
            FIGURE6_BANDS
        )

    def test_band_ordering(self, fleet):
        bands = percentile_bands(fleet)
        for band in bands:
            assert np.all(band.lower <= band.upper)

    def test_nested_bands(self, fleet):
        bands = percentile_bands(fleet)
        outer, inner = bands[0], bands[-1]
        assert np.all(outer.lower <= inner.lower)
        assert np.all(inner.upper <= outer.upper)

    def test_band_label(self, fleet):
        band = percentile_bands(fleet)[0]
        assert band.label == "p5-p95"

    def test_band_width(self, fleet):
        band = percentile_bands(fleet, bands=[(10, 90)])[0]
        assert band.mean_width() > 0
        assert band.width().shape == (24,)

    def test_invalid_band_rejected(self, fleet):
        with pytest.raises(ValueError):
            percentile_bands(fleet, bands=[(90, 10)])

    def test_identical_fleet_zero_width(self):
        grid = TimeGrid(0, 60, 24)
        ts = TraceSet.from_traces(
            {f"s{i}": PowerTrace.constant(grid, 5.0) for i in range(4)}
        )
        band = percentile_bands(ts, bands=[(5, 95)])[0]
        assert band.mean_width() == pytest.approx(0.0)


class TestDiurnalRange:
    def test_flat_fleet(self, fleet):
        assert diurnal_range(fleet) == pytest.approx(0.0)

    def test_swinging_fleet(self):
        grid = TimeGrid(0, 60, 24)
        values = 50 + 50 * np.sin(np.linspace(0, 2 * np.pi, 24))
        ts = TraceSet.from_traces(
            {f"s{i}": PowerTrace(grid, values) for i in range(3)}
        )
        assert diurnal_range(ts) > 0.9

    def test_zero_fleet(self):
        grid = TimeGrid(0, 60, 24)
        ts = TraceSet.from_traces({"z": PowerTrace.zeros(grid)})
        assert diurnal_range(ts) == 0.0


class TestSummary:
    def test_keys(self, fleet):
        summary = band_summary(fleet)
        assert set(summary) == {
            "median_peak",
            "median_valley",
            "diurnal_swing",
            "p5_p95_mean_width",
            "heterogeneity",
        }

    def test_web_vs_hadoop_summary(self, synthesizer):
        from repro.traces import hadoop_profile, training_trace_set, web_profile

        web = training_trace_set(synthesizer.service_instances(web_profile(), 10))
        hadoop = training_trace_set(
            synthesizer.service_instances(hadoop_profile(), 10)
        )
        assert (
            band_summary(web)["diurnal_swing"]
            > band_summary(hadoop)["diurnal_swing"]
        )
