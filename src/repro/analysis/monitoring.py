"""Continuous fragmentation monitoring (the Sec. 3.6 control loop's sensor).

"Our framework continuously records the I-traces and the S-traces, and
dynamically re-evaluates the severity of the fragmentation problem by
monitoring the sum of peaks of power traces at each level of power
infrastructure."  A :class:`FragmentationMonitor` ingests periodic trace
snapshots, tracks each level's sum of peaks and worst node against the
values observed at deployment time, and raises advisories when drift
exceeds configured thresholds — the trigger for running the remapping
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .. import obs
from ..core.metrics import AsynchronyIndex
from ..infra.aggregation import NodePowerView
from ..infra.assignment import Assignment
from ..obs import events as obs_events
from ..obs import telemetry as obs_telemetry
from ..traces.traceset import TraceSet


@dataclass(frozen=True)
class MonitorConfig:
    """Drift thresholds.

    An advisory fires when a level's sum of peaks grows by more than
    ``sum_of_peaks_tolerance`` (fractional) over its deployment-time
    reference, or when any node's asynchrony score falls below
    ``min_asynchrony``.
    """

    level: str
    sum_of_peaks_tolerance: float = 0.05
    min_asynchrony: float = 1.02

    def __post_init__(self) -> None:
        if self.sum_of_peaks_tolerance < 0:
            raise ValueError("tolerance cannot be negative")
        if self.min_asynchrony < 1.0:
            raise ValueError("asynchrony scores are never below 1.0")


@dataclass(frozen=True)
class Advisory:
    """One monitoring finding: what drifted, where, and how badly."""

    kind: str  # "sum_of_peaks" or "node_asynchrony"
    level: str
    node_name: Optional[str]
    observed: float
    reference: float

    @property
    def severity(self) -> float:
        """Fractional drift beyond the reference (higher = worse)."""
        if self.reference == 0:
            return 0.0
        return abs(self.observed - self.reference) / abs(self.reference)


@dataclass
class Snapshot:
    """One monitoring observation."""

    label: str
    sum_of_peaks: float
    worst_node: Optional[str]
    min_asynchrony: float
    advisories: List[Advisory] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return not self.advisories


class FragmentationMonitor:
    """Tracks a placement's fragmentation over successive trace snapshots.

    Two feeds are supported.  Snapshot mode (:meth:`observe`) ingests a
    whole new trace set and re-measures the fleet.  Delta mode
    (:meth:`observe_delta`) ingests a
    :class:`~repro.engine.delta.FleetDelta` — one swap, move, or in-place
    trace refresh — and re-scores only the dirtied nodes through the
    monitor's persistent incremental view and
    :class:`~repro.core.metrics.AsynchronyIndex`, so
    :meth:`needs_remapping` stays current at O(affected subtree) per
    placement action instead of O(fleet).
    """

    def __init__(self, assignment: Assignment, config: MonitorConfig) -> None:
        self.assignment = assignment
        self.config = config
        self._reference_sum_of_peaks: Optional[float] = None
        self._view: Optional[NodePowerView] = None
        self._index: Optional[AsynchronyIndex] = None
        self.history: List[Snapshot] = []

    # ------------------------------------------------------------------
    def calibrate(self, traces: TraceSet) -> Snapshot:
        """Record the deployment-time reference from the first snapshot."""
        snapshot = self._measure("calibration", traces, check=False)
        self._reference_sum_of_peaks = snapshot.sum_of_peaks
        self.history.append(snapshot)
        return snapshot

    def observe(self, label: str, traces: TraceSet) -> Snapshot:
        """Ingest a new snapshot and evaluate drift against the reference."""
        if self._reference_sum_of_peaks is None:
            raise RuntimeError("monitor must be calibrated before observing")
        snapshot = self._measure(label, traces, check=True)
        self.history.append(snapshot)
        self._emit_advisories(label, snapshot)
        return snapshot

    def observe_delta(self, label: str, delta) -> Snapshot:
        """Ingest one placement delta and re-evaluate drift incrementally.

        Applies the delta to the persistent view/score index (touching
        only the dirty subtree), evaluates the same thresholds as
        :meth:`observe`, and feeds the dirtied budgeted nodes' aggregate
        traces to the active flight recorder — so precursor detection and
        violation events keep flowing without re-scoring the fleet.
        """
        if self._reference_sum_of_peaks is None or self._index is None:
            raise RuntimeError("monitor must be calibrated before observing")
        self._index.apply_delta(delta)  # drives the shared view
        snapshot = self._snapshot_from_cache(label, check=True)
        self.history.append(snapshot)
        self._emit_advisories(label, snapshot)
        assert self._view is not None
        obs_telemetry.record_delta(self._view, self._view.last_dirty)
        obs.count("monitor.delta_observations")
        return snapshot

    def apply_delta(self, delta) -> None:
        """Subscriber-protocol hook for :class:`~repro.engine.delta.PlacementState`."""
        self.observe_delta(f"delta:{len(self.history)}", delta)

    def _emit_advisories(self, label: str, snapshot: Snapshot) -> None:
        # Mirror the findings into the structured event log (no-op unless
        # recording), so monitoring drift shows up alongside violations and
        # swaps instead of living only in returned Snapshot objects.
        for advisory in snapshot.advisories:
            obs_events.emit(
                obs_events.ADVISORY,
                severity="advisory",
                source="analysis.monitoring",
                label=label,
                drift=advisory.kind,
                level=advisory.level,
                node=advisory.node_name,
                observed=advisory.observed,
                reference=advisory.reference,
                drift_severity=advisory.severity,
            )

    def needs_remapping(self) -> bool:
        """True if the most recent snapshot raised any advisory."""
        return bool(self.history) and not self.history[-1].healthy

    # ------------------------------------------------------------------
    def _measure(self, label: str, traces: TraceSet, *, check: bool) -> Snapshot:
        # A whole-fleet snapshot rebuilds the persistent incremental state
        # (the traces changed wholesale).  If deltas moved instances since
        # the last snapshot, carry the *current* placement forward.
        if self._view is not None:
            self.assignment = self._view.materialized_assignment()
        self._view = NodePowerView(self.assignment.topology, self.assignment, traces)
        self._index = AsynchronyIndex(self._view, self.config.level)
        return self._snapshot_from_cache(label, check=check)

    def _snapshot_from_cache(self, label: str, *, check: bool) -> Snapshot:
        assert self._view is not None and self._index is not None
        sum_of_peaks = self._view.sum_of_peaks(self.config.level)
        scores = self._index.scores()
        worst = min(scores, key=scores.get) if scores else None
        min_score = min(scores.values()) if scores else 1.0

        advisories: List[Advisory] = []
        if check:
            reference = self._reference_sum_of_peaks
            assert reference is not None
            if sum_of_peaks > reference * (1.0 + self.config.sum_of_peaks_tolerance):
                advisories.append(
                    Advisory(
                        kind="sum_of_peaks",
                        level=self.config.level,
                        node_name=None,
                        observed=sum_of_peaks,
                        reference=reference,
                    )
                )
            for node_name, score in scores.items():
                if score < self.config.min_asynchrony:
                    advisories.append(
                        Advisory(
                            kind="node_asynchrony",
                            level=self.config.level,
                            node_name=node_name,
                            observed=score,
                            reference=self.config.min_asynchrony,
                        )
                    )
        return Snapshot(
            label=label,
            sum_of_peaks=sum_of_peaks,
            worst_node=worst,
            min_asynchrony=min_score,
            advisories=advisories,
        )
