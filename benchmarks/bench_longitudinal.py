"""Longitudinal robustness: the Sec. 3.6 loop over nine weeks of change.

Not a paper figure.  The paper states the framework "can be continuously
applied ... when power consumption patterns start to exhibit middle-term or
long-term shifts" and that "significant changes rarely occur within
months" (Sec. 3.6).  This benchmark simulates nine weeks of telemetry with
instance-level random walks plus a week-4 operational event (40% of the db
fleet's backup window rescheduled into the daytime) and checks three
things:

1. **no false alarms** — during ordinary weeks the monitor stays quiet;
2. **detection** — the event week raises advisories and triggers swaps;
3. **structural robustness** — the balanced placement ends within a
   whisker of what a full from-scratch re-placement on the new telemetry
   would achieve.  (A service-uniform change hits every node alike, so an
   evenly-spread placement has little to repair — a genuine property of
   the design, not a weakness of the loop.)
"""

import numpy as np
import pytest

from repro.analysis.longitudinal import (
    DriftingFleet,
    LongitudinalSimulation,
    PhaseConvergenceEvent,
    no_drift,
)
from repro.analysis.report import format_percent, format_table
from repro.core import PlacementConfig, WorkloadAwarePlacer
from repro.infra import Level, NodePowerView, build_topology, ocp_spec
from repro.traces import (
    InstanceRecord,
    TraceSynthesizer,
    cache_profile,
    db_profile,
    hadoop_profile,
    media_profile,
    web_profile,
)

PROFILES = {
    "web": web_profile("web"),
    "cache": cache_profile(),
    "db": db_profile(),
    "hadoop": hadoop_profile(),
    "media": media_profile(),
}

EVENT_WEEK = 4
N_WEEKS = 9


def _run():
    synthesizer = TraceSynthesizer(weeks=2, step_minutes=30, seed=23)
    records = synthesizer.fleet(
        [
            (PROFILES["web"], 72),
            (cache_profile(), 48),
            (db_profile(), 48),
            (hadoop_profile(), 36),
            (media_profile(), 36),
        ],
        test_weeks=0,
    )
    topology = build_topology(
        ocp_spec(
            "drifting",
            suites=2,
            msbs_per_suite=2,
            sbs_per_msb=2,
            rpps_per_sb=2,
            racks_per_rpp=2,
            servers_per_rack=8,
        )
    )
    placer = WorkloadAwarePlacer(PlacementConfig(seed=0))
    assignment = placer.place(records, topology).assignment

    rng = np.random.default_rng(99)
    db_ids = [r.instance_id for r in records if r.service == "db"]
    affected = frozenset(
        rng.choice(db_ids, size=int(0.4 * len(db_ids)), replace=False)
    )
    event = PhaseConvergenceEvent(
        week=EVENT_WEEK, instance_ids=affected, target_offset_hours=12.0
    )
    fleet = DriftingFleet(
        records,
        PROFILES,
        no_drift,
        step_minutes=30,
        seed=23,
        personality_walk_hours=0.15,
        personality_walk_amplitude=0.02,
        event=event,
    )
    sim = LongitudinalSimulation(fleet, assignment, level=Level.RPP)
    result = sim.run(N_WEEKS)

    # Reference: a from-scratch re-placement judged on the final week.
    final_traces = fleet.week(N_WEEKS - 1)
    final_records = [
        InstanceRecord(instance=r.instance, training_trace=final_traces[r.instance_id])
        for r in records
    ]
    fresh = placer.place(final_records, topology).assignment
    fresh_peaks = NodePowerView(topology, fresh, final_traces).sum_of_peaks(Level.RPP)
    return result, fresh_peaks


@pytest.mark.benchmark(group="longitudinal")
def test_longitudinal_adaptation(benchmark, emit_report):
    result, fresh_peaks = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [
        [
            outcome.week,
            f"{result.static[outcome.week]:.0f}",
            f"{outcome.sum_of_peaks:.0f}",
            outcome.advisories,
            outcome.swaps_performed,
        ]
        for outcome in result.adaptive
    ]
    table = format_table(
        ["week", "frozen (W)", "adaptive (W)", "advisories", "swaps"],
        rows,
        title=(
            "Nine weeks with a week-4 backup-reschedule event — "
            "RPP sum-of-peaks"
        ),
    )
    final = result.adaptive[-1].sum_of_peaks
    summary = (
        f"\nfinal week: adaptive {final:.0f} W vs fresh re-placement "
        f"{fresh_peaks:.0f} W (gap {format_percent(final / fresh_peaks - 1.0)}) "
        f"— total swaps {result.total_swaps()}"
    )
    emit_report("longitudinal", table + summary)

    # 1. No false alarms before the event.
    for outcome in result.adaptive[1:EVENT_WEEK]:
        assert outcome.advisories == 0
    # 2. The event is detected and answered with swaps.
    event_week = result.adaptive[EVENT_WEEK]
    assert event_week.advisories >= 1
    assert event_week.swaps_performed >= 1
    # 3. Adaptive never loses to frozen, and stays near the fresh optimum.
    assert result.adaptive[-1].sum_of_peaks <= result.static[-1] * 1.005
    assert result.adaptive[-1].sum_of_peaks <= fresh_peaks * 1.03
