"""Property-based tests for the trace substrate."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.traces import PowerTrace, TimeGrid, TraceSet

GRID24 = TimeGrid(0, 60, 24)
WEEK_GRID = TimeGrid.for_weeks(2, step_minutes=6 * 60)


def values_strategy(n=24, max_value=1e4):
    return hnp.arrays(
        dtype=np.float64,
        shape=n,
        elements=st.floats(0, max_value, allow_nan=False, allow_infinity=False),
    )


traces = values_strategy().map(lambda v: PowerTrace(GRID24, v))


class TestTraceAlgebra:
    @given(traces, traces)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(traces, traces, traces)
    def test_addition_associates(self, a, b, c):
        left = (a + b) + c
        right = a + (b + c)
        assert np.allclose(left.values, right.values)

    @given(traces)
    def test_zero_identity(self, a):
        assert a + PowerTrace.zeros(GRID24) == a

    @given(traces, traces)
    def test_peak_subadditive(self, a, b):
        """peak(a+b) <= peak(a) + peak(b): the entire paper rests on this."""
        assert (a + b).peak() <= a.peak() + b.peak() + 1e-9

    @given(traces, traces)
    def test_peak_superadditive_lower_bound(self, a, b):
        """peak(a+b) >= max(peak(a), peak(b)) for non-negative traces."""
        assert (a + b).peak() >= max(a.peak(), b.peak()) - 1e-9

    @given(traces, st.floats(0, 100, allow_nan=False))
    def test_scaling_scales_peak(self, a, factor):
        assert (a * factor).peak() == pytest.approx(a.peak() * factor, abs=1e-6)

    @given(traces)
    def test_mean_between_valley_and_peak(self, a):
        assert a.valley() - 1e-9 <= a.mean() <= a.peak() + 1e-9

    @given(traces, st.floats(0, 1e5, allow_nan=False))
    def test_energy_slack_nonnegative(self, a, extra):
        budget = a.peak() + extra
        assert a.energy_slack(budget) >= -1e-6

    @given(traces)
    def test_percentile_monotone(self, a):
        qs = [0, 25, 50, 75, 100]
        values = [a.percentile(q) for q in qs]
        assert values == sorted(values)


class TestWeekAveraging:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=WEEK_GRID.n_samples,
            elements=st.floats(0, 1e4, allow_nan=False, allow_infinity=False),
        )
    )
    def test_average_weeks_bounded_by_extremes(self, values):
        trace = PowerTrace(WEEK_GRID, values)
        averaged = trace.average_weeks()
        weeks = trace.split_weeks()
        stacked = np.vstack([w.values for w in weeks])
        assert np.all(averaged.values <= stacked.max(axis=0) + 1e-9)
        assert np.all(averaged.values >= stacked.min(axis=0) - 1e-9)

    @given(values_strategy(WEEK_GRID.samples_per_week))
    def test_identical_weeks_average_to_themselves(self, week_values):
        values = np.tile(week_values, 2)
        averaged = PowerTrace(WEEK_GRID, values).average_weeks()
        assert np.allclose(averaged.values, week_values)


class TestTraceSetProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=(5, 24),
            elements=st.floats(0, 1e4, allow_nan=False, allow_infinity=False),
        )
    )
    def test_total_equals_sum_of_rows(self, matrix):
        ts = TraceSet(GRID24, [f"t{i}" for i in range(5)], matrix)
        assert np.allclose(ts.total().values, matrix.sum(axis=0))

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=(5, 24),
            elements=st.floats(0, 1e4, allow_nan=False, allow_infinity=False),
        )
    )
    def test_aggregate_peak_le_sum_of_peaks(self, matrix):
        ts = TraceSet(GRID24, [f"t{i}" for i in range(5)], matrix)
        assert ts.aggregate_peak() <= ts.sum_of_peaks() + 1e-9

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=(4, 24),
            elements=st.floats(0, 100, allow_nan=False, allow_infinity=False),
        ),
        st.permutations(list(range(4))),
    )
    def test_subset_permutation_invariant_totals(self, matrix, order):
        ts = TraceSet(GRID24, [f"t{i}" for i in range(4)], matrix)
        shuffled = ts.subset([f"t{i}" for i in order])
        # Allclose, not equality: float addition is not associative.
        assert np.allclose(shuffled.total().values, ts.total().values)
