"""The persistent worker pool: reuse, short-circuits, pinning, backoff.

These pin the properties the parallel-execution fix promises:

* serial short-circuits (``workers=1`` or a single spec) never construct a
  pool at all;
* one pool's workers survive across batches (``generation`` counts
  executor builds, not batches);
* every worker pins its BLAS/OpenMP thread pools at startup;
* the retry loop never sleeps its backoff *after* the final attempt.
"""

import os

import pytest

from repro.engine import parallel
from repro.engine.parallel import (
    DEFAULT_WORKER_THREADS,
    WORKER_THREAD_ENV_VARS,
    RunFailure,
    WorkerPool,
    get_pool,
    run_many,
    shutdown_pools,
)


# ----------------------------------------------------------------------
# module-level callables (must pickle into fork workers)
# ----------------------------------------------------------------------
def well_behaved():
    return "ok"


def other_task():
    return "also ok"


def read_thread_env():
    """What the worker's environment says about library thread pools."""
    return {name: os.environ.get(name) for name in WORKER_THREAD_ENV_VARS}


class AlwaysRaises:
    def __call__(self):
        raise ValueError("deliberate failure")


# ----------------------------------------------------------------------
# serial short-circuits create no pool
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "specs, workers",
    [
        ([well_behaved, other_task], 1),  # workers=1
        ([well_behaved], 4),  # single spec
        ([], 4),  # empty batch
    ],
)
def test_serial_short_circuit_never_touches_a_pool(monkeypatch, specs, workers):
    def forbidden(*args, **kwargs):
        raise AssertionError("serial path constructed a worker pool")

    monkeypatch.setattr(parallel, "get_pool", forbidden)
    monkeypatch.setattr(parallel.WorkerPool, "__init__", forbidden)
    results = run_many(specs, workers=workers)
    assert len(results) == len(specs)
    for artifacts in results:
        assert artifacts.result in ("ok", "also ok")


# ----------------------------------------------------------------------
# pool persistence
# ----------------------------------------------------------------------
def test_pool_workers_survive_across_batches():
    # A private pool, not the process-wide registry one: `generation`
    # counts executor builds over the pool's whole lifetime, and the
    # registry pool accumulates builds from every earlier test.
    with WorkerPool(2) as pool:
        first = run_many([well_behaved, other_task], workers=2, pool=pool)
        generation_after_first = pool.generation
        second = run_many([other_task, well_behaved], workers=2, pool=pool)
        assert [a.result for a in first] == ["ok", "also ok"]
        assert [a.result for a in second] == ["also ok", "ok"]
        # Same executor, same workers: no re-spawn between batches.
        assert pool.generation == generation_after_first == 1


def test_get_pool_returns_the_same_pool_per_worker_count():
    assert get_pool(2) is get_pool(2)
    assert get_pool(2) is not get_pool(3)


def test_pool_validates_worker_count():
    with pytest.raises(ValueError):
        WorkerPool(0)
    with pytest.raises(ValueError):
        get_pool(0)


# ----------------------------------------------------------------------
# worker thread pinning
# ----------------------------------------------------------------------
def test_workers_pin_blas_thread_pools():
    with WorkerPool(2) as pool:
        env = pool.submit(read_thread_env).result()
    expected = str(DEFAULT_WORKER_THREADS)
    assert env == {name: expected for name in WORKER_THREAD_ENV_VARS}


def test_worker_thread_count_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_WORKER_THREADS", "3")
    assert parallel.worker_thread_count() == 3
    monkeypatch.delenv("REPRO_WORKER_THREADS")
    assert parallel.worker_thread_count() == DEFAULT_WORKER_THREADS


# ----------------------------------------------------------------------
# retry backoff: never sleeps after the final attempt
# ----------------------------------------------------------------------
def test_serial_retry_sleeps_between_attempts_not_after_the_last(monkeypatch):
    sleeps = []
    monkeypatch.setattr(parallel.time, "sleep", sleeps.append)
    [failure] = run_many(
        [AlwaysRaises()], workers=1, max_attempts=3, retry_backoff_s=0.25
    )
    assert isinstance(failure, RunFailure)
    assert failure.attempts == 3
    # Two gaps between three attempts; no sleep once the spec is written off.
    assert len(sleeps) == 2


def test_serial_single_attempt_never_sleeps(monkeypatch):
    sleeps = []
    monkeypatch.setattr(parallel.time, "sleep", sleeps.append)
    [failure] = run_many(
        [AlwaysRaises()], workers=1, max_attempts=1, retry_backoff_s=10.0
    )
    assert isinstance(failure, RunFailure)
    assert sleeps == []


def test_pooled_retry_never_sleeps_after_the_final_round(monkeypatch):
    sleeps = []
    monkeypatch.setattr(parallel.time, "sleep", sleeps.append)
    try:
        results = run_many(
            [AlwaysRaises(), AlwaysRaises()],
            workers=2,
            max_attempts=2,
            retry_backoff_s=0.25,
        )
    finally:
        shutdown_pools()
    assert all(isinstance(r, RunFailure) for r in results)
    # One retry round separates the two attempts; after the second (final)
    # attempt every spec is out of tries, so no further backoff may run.
    assert len(sleeps) == 1
