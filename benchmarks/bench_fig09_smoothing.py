"""Figure 9: children power traces before/after local re-placement.

Paper: applying the placement to the subtree of one mid-level node leaves
the parent's trace untouched while the children's traces become smoother,
more balanced, and lower-peaked.
"""

import pytest

from repro.analysis import experiments as E
from repro.analysis.report import format_percent, format_table
from repro.infra import Level


def _run(full_scale):
    dc = E.get_datacenter("DC3", **full_scale)
    return E.run_figure9(dc, level=Level.SB)


@pytest.mark.benchmark(group="figure9")
def test_fig09_smoothing(benchmark, emit_report, full_scale):
    figure = benchmark.pedantic(_run, args=(full_scale,), rounds=1, iterations=1)

    rows = []
    for child in figure.child_peaks_before:
        rows.append(
            [
                child.rsplit("/", 1)[-1],
                f"{figure.child_peaks_before[child]:.0f}",
                f"{figure.child_peaks_after[child]:.0f}",
                f"{figure.child_std_before[child]:.0f}",
                f"{figure.child_std_after[child]:.0f}",
            ]
        )
    table = format_table(
        ["child", "peak before W", "peak after W", "std before", "std after"],
        rows,
        title=f"Figure 9 — smoothing under {figure.node_name} (DC3, test week)",
    )
    summary = (
        f"parent peak: {figure.parent_peak_before:.0f} -> "
        f"{figure.parent_peak_after:.0f} W (unchanged)\n"
        f"sum of child peaks: {figure.sum_child_peaks_before:.0f} -> "
        f"{figure.sum_child_peaks_after:.0f} W "
        f"({format_percent(figure.child_peak_reduction)} reduction)"
    )
    emit_report("fig09_smoothing", table + "\n\n" + summary)

    # Shape: the parent's power is untouched; children's summed peaks drop;
    # children get smoother (lower variance) on average.
    assert figure.parent_peak_after == pytest.approx(figure.parent_peak_before)
    assert figure.child_peak_reduction > 0
    mean_std_before = sum(figure.child_std_before.values()) / len(figure.child_std_before)
    mean_std_after = sum(figure.child_std_after.values()) / len(figure.child_std_after)
    assert mean_std_after < mean_std_before
