"""End-to-end tests of the chaos harness at small scale."""

import pytest

from repro.faults import (
    DEFAULT_SUITE,
    format_chaos_table,
    run_chaos_scenario,
    scenario_by_name,
)

SMALL = dict(n_instances=96, step_minutes=60, weeks=2)


@pytest.fixture(scope="module")
def clean_outcome():
    return run_chaos_scenario(scenario_by_name("clean"), dc_name="DC1", **SMALL)


@pytest.fixture(scope="module")
def dirty_outcome():
    return run_chaos_scenario(
        scenario_by_name("sensor_dropout"), dc_name="DC1", **SMALL
    )


@pytest.fixture(scope="module")
def storm_outcome():
    return run_chaos_scenario(
        scenario_by_name("perfect_storm"), dc_name="DC1", **SMALL
    )


class TestSuiteRegistry:
    def test_names_unique(self):
        names = [s.name for s in DEFAULT_SUITE]
        assert len(names) == len(set(names))

    def test_lookup(self):
        assert scenario_by_name("clean").name == "clean"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            scenario_by_name("meteor_strike")


class TestCleanControl:
    def test_passes_with_no_faults(self, clean_outcome):
        assert clean_outcome.passed
        assert clean_outcome.repair.n_flagged == 0
        assert clean_outcome.dirty_missing_fraction == 0.0
        assert clean_outcome.quality_delta == 0.0

    def test_no_recovery_needed(self, clean_outcome):
        assert not clean_outcome.reshaping.recovery.engaged
        assert clean_outcome.placement_trips == 0
        assert clean_outcome.placement_safe


class TestDirtyTelemetry:
    def test_repair_actually_ran(self, dirty_outcome):
        assert dirty_outcome.dirty_missing_fraction > 0
        assert dirty_outcome.repair.n_interpolated > 0

    def test_quality_within_tolerance(self, dirty_outcome):
        assert dirty_outcome.checks()["quality_within_tolerance"]

    def test_safety_checks_hold(self, dirty_outcome):
        assert dirty_outcome.reshaping.scenario.overload_steps() == 0
        assert not dirty_outcome.reshaping.recovery.trips_after


class TestPerfectStorm:
    def test_recovers_to_power_safe(self, storm_outcome):
        """Even with every fault at once the run ends power-safe."""
        assert storm_outcome.reshaping.scenario.overload_steps() == 0
        assert not storm_outcome.reshaping.recovery.trips_after
        assert storm_outcome.reshaping.power_safe()

    def test_faults_were_exercised(self, storm_outcome):
        assert storm_outcome.repair.n_flagged > 0
        assert storm_outcome.reshaping.recovery.failure_downtime_server_steps > 0


class TestReporting:
    def test_table_lists_every_scenario(self, clean_outcome, dirty_outcome):
        table = format_chaos_table([clean_outcome, dirty_outcome])
        assert "clean" in table
        assert "sensor_dropout" in table
        assert "verdict" in table

    def test_empty_table(self):
        assert "Chaos suite" in format_chaos_table([])
