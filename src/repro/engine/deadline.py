"""Per-task deadlines and failure-domain policy for the worker pool.

The parallel data plane (:mod:`repro.engine.parallel`) survives worker
*death* — a killed worker breaks the executor, the pool rebuilds, tasks
retry.  It did not survive worker *hangs*: every ``wait()`` was unbounded,
so one stuck worker stalled ``map_shards`` / ``run_many`` forever.  For a
continuous control loop (the paper's system ran 24/7 against a production
fleet) bounded reaction time is a correctness property, not a tuning knob.

:class:`TaskDeadline` is the policy object that bounds completion under
partial failure.  It configures four independent failure domains, all
enforced by the dispatch driver in :mod:`repro.engine.parallel`:

* **hard deadline** — a task older than ``hard_timeout_s`` is declared
  dead: the watchdog kills the worker processes outright (a hung worker
  never honours a graceful shutdown), fails the attempt with
  :class:`TaskTimeoutError`, and retries on a rebuilt pool;
* **straggler speculation** — a task older than the straggler threshold
  (``soft_timeout_s``, or a quantile of the live ``pool.task_exec_s``
  histogram scaled by ``straggler_factor``, whichever is larger) gets a
  speculative duplicate dispatched; the first result wins and only the
  winner's telemetry merges, so results stay bit-identical;
* **poison-shard quarantine** — a shard whose attempts have killed or hung
  workers ``quarantine_after`` times is quarantined to in-process serial
  execution instead of condemning the pool again;
* **circuit breaker** — when infrastructure failures trip the stage-wide
  breaker (``degrade_min_failures`` failures *and* a
  ``degrade_failure_ratio`` failure rate), the whole stage degrades to
  serial in-process execution and a ``pool_degraded`` event is emitted.

A deadline reaches the pool three ways, most specific first: the
``deadline=`` parameter on :meth:`~repro.engine.parallel.WorkerPool.map_shards`
/ :func:`~repro.engine.parallel.run_many`, the process default installed by
:func:`set_default_deadline` / :class:`deadline_scope` (this is what
``SmoothOperatorConfig.deadline`` and the CLI ``--task-timeout`` flag use),
and the ``REPRO_TASK_TIMEOUT`` / ``REPRO_TASK_SOFT_TIMEOUT`` environment
variables.  With none of them set the data plane behaves exactly as before:
no watchdog, no speculation, no quarantine.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "HARD_TIMEOUT_ENV",
    "SOFT_TIMEOUT_ENV",
    "TaskDeadline",
    "TaskTimeoutError",
    "clear_default_deadline",
    "deadline_from_env",
    "deadline_scope",
    "get_default_deadline",
    "set_default_deadline",
]

#: Environment variable naming the hard per-task timeout in seconds.
HARD_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"

#: Environment variable naming the soft (straggler) timeout in seconds.
SOFT_TIMEOUT_ENV = "REPRO_TASK_SOFT_TIMEOUT"


class TaskTimeoutError(RuntimeError):
    """A pooled task exceeded its hard deadline and was killed.

    Raised coordinator-side by the watchdog (the hung worker never raises
    anything — it is SIGKILLed), so it carries the dispatch context the
    worker could not report: the stage label, the shard id, which attempt
    timed out, and the deadline that was missed.
    """

    def __init__(
        self, label: str, shard_id: int, attempt: int, timeout_s: float
    ) -> None:
        super().__init__(
            f"task {label!r} shard {shard_id} attempt {attempt} exceeded "
            f"its hard deadline of {timeout_s:g}s"
        )
        self.label = label
        self.shard_id = shard_id
        self.attempt = attempt
        self.timeout_s = timeout_s


@dataclass(frozen=True)
class TaskDeadline:
    """Failure-domain policy for one pooled stage (or a whole process).

    All fields have safe defaults; the two timeouts default to ``None``
    (disabled) so a bare ``TaskDeadline()`` enables only the structural
    protections (quarantine and the circuit breaker) that need no timing
    assumptions.
    """

    #: Straggler threshold floor in seconds: a task older than this is a
    #: speculation candidate.  ``None`` leaves speculation to the
    #: quantile-based threshold alone (which needs live histogram data).
    soft_timeout_s: Optional[float] = None

    #: Hard per-task deadline in seconds: past this the watchdog kills the
    #: worker processes and fails the attempt with :class:`TaskTimeoutError`.
    #: ``None`` disables the watchdog.
    hard_timeout_s: Optional[float] = None

    #: Percentile of the live ``pool.task_exec_s`` histogram the straggler
    #: threshold is derived from.
    straggler_quantile: float = 95.0

    #: Multiple of that percentile a task must exceed to count as a
    #: straggler.
    straggler_factor: float = 3.0

    #: Minimum histogram observations before the quantile estimate is
    #: trusted; below this only ``soft_timeout_s`` triggers speculation.
    min_straggler_samples: int = 16

    #: Master switch for speculative re-dispatch of stragglers.
    speculative: bool = True

    #: Infrastructure failures (worker deaths, hard timeouts) a single
    #: shard may cause before it is quarantined to in-process serial
    #: execution.  ``0`` disables quarantine.
    quarantine_after: int = 2

    #: Fraction of dispatched tasks that must have failed on infrastructure
    #: for the stage-wide circuit breaker to trip.
    degrade_failure_ratio: float = 0.5

    #: Minimum infrastructure failures before the breaker may trip
    #: (prevents a two-task stage degrading on one death).  ``0`` disables
    #: the breaker.
    degrade_min_failures: int = 4

    #: Watchdog poll interval in seconds — the granularity at which
    #: deadlines and straggler ages are checked.
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        for name in ("soft_timeout_s", "hard_timeout_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set")
        if (
            self.soft_timeout_s is not None
            and self.hard_timeout_s is not None
            and self.soft_timeout_s > self.hard_timeout_s
        ):
            raise ValueError("soft_timeout_s cannot exceed hard_timeout_s")
        if not 0 < self.straggler_quantile <= 100:
            raise ValueError("straggler_quantile must be in (0, 100]")
        if self.straggler_factor <= 0:
            raise ValueError("straggler_factor must be positive")
        if self.min_straggler_samples < 1:
            raise ValueError("min_straggler_samples must be at least 1")
        if self.quarantine_after < 0:
            raise ValueError("quarantine_after cannot be negative")
        if not 0 < self.degrade_failure_ratio <= 1:
            raise ValueError("degrade_failure_ratio must be in (0, 1]")
        if self.degrade_min_failures < 0:
            raise ValueError("degrade_min_failures cannot be negative")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")

    # ------------------------------------------------------------------
    @property
    def watches(self) -> bool:
        """Does the dispatch loop need to poll (vs. block indefinitely)?"""
        return self.hard_timeout_s is not None or self.speculative

    def straggler_threshold_s(self, histogram=None) -> Optional[float]:
        """The age in seconds past which a task is a speculation candidate.

        Derived from the quantile of ``histogram`` (the live
        ``pool.task_exec_s`` distribution) scaled by
        :attr:`straggler_factor`, floored at :attr:`soft_timeout_s` and
        capped at :attr:`hard_timeout_s` (speculating on a task the
        watchdog is about to kill is wasted work).  ``None`` — no
        speculation — when the switch is off or neither source can supply
        a threshold.
        """
        if not self.speculative:
            return None
        estimate: Optional[float] = None
        if histogram is not None and histogram.count >= self.min_straggler_samples:
            quantile = histogram.percentile(self.straggler_quantile)
            if quantile == quantile:  # not NaN
                estimate = quantile * self.straggler_factor
        if estimate is None:
            estimate = self.soft_timeout_s
        elif self.soft_timeout_s is not None:
            estimate = max(estimate, self.soft_timeout_s)
        if estimate is not None and self.hard_timeout_s is not None:
            estimate = min(estimate, self.hard_timeout_s)
        return estimate


# ----------------------------------------------------------------------
# the process default
# ----------------------------------------------------------------------
def _env_seconds(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def deadline_from_env() -> Optional[TaskDeadline]:
    """The deadline configured by environment, if any.

    ``REPRO_TASK_TIMEOUT`` sets the hard timeout and
    ``REPRO_TASK_SOFT_TIMEOUT`` the straggler floor (both in seconds;
    non-positive or unparsable values are ignored).  With neither set there
    is no environment deadline.
    """
    hard = _env_seconds(HARD_TIMEOUT_ENV)
    soft = _env_seconds(SOFT_TIMEOUT_ENV)
    if hard is None and soft is None:
        return None
    if soft is not None and hard is not None and soft > hard:
        soft = hard
    return TaskDeadline(soft_timeout_s=soft, hard_timeout_s=hard)


#: The explicitly installed process default (``_SET`` distinguishes "set to
#: None" — deadlines forced off — from "never set" — fall back to env).
_DEFAULT: Optional[TaskDeadline] = None
_SET = False


def get_default_deadline() -> Optional[TaskDeadline]:
    """The deadline pooled stages use when no ``deadline=`` is passed.

    An explicitly installed default (:func:`set_default_deadline`,
    :class:`deadline_scope`) wins; otherwise the environment variables are
    consulted at call time, so tests and operators can flip them without
    touching code.
    """
    if _SET:
        return _DEFAULT
    return deadline_from_env()


def set_default_deadline(deadline: Optional[TaskDeadline]) -> None:
    """Install the process-default deadline (``None`` forces deadlines off,
    overriding the environment)."""
    global _DEFAULT, _SET
    _DEFAULT = deadline
    _SET = True


def clear_default_deadline() -> None:
    """Drop any installed default; the environment variables apply again."""
    global _DEFAULT, _SET
    _DEFAULT = None
    _SET = False


class deadline_scope:
    """Install a default deadline for the duration of a ``with`` block.

    ``deadline_scope(None)`` is a transparent no-op (the surrounding
    default, if any, keeps applying) so callers can thread an optional
    config field through without branching::

        with deadline_scope(config.deadline):
            operator.optimize(...)
    """

    __slots__ = ("deadline", "_saved")

    def __init__(self, deadline: Optional[TaskDeadline]) -> None:
        self.deadline = deadline
        self._saved: Optional[Tuple[bool, Optional[TaskDeadline]]] = None

    def __enter__(self) -> Optional[TaskDeadline]:
        if self.deadline is not None:
            self._saved = (_SET, _DEFAULT)
            set_default_deadline(self.deadline)
        return self.deadline

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _DEFAULT, _SET
        if self._saved is not None:
            _SET, _DEFAULT = self._saved
            self._saved = None
        return False
