"""Property-based tests for k-means invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import balanced_kmeans, kmeans


def point_sets(max_n=40, dims=3):
    return st.integers(2, max_n).flatmap(
        lambda n: hnp.arrays(
            dtype=np.float64,
            shape=(n, dims),
            elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
        )
    )


class TestKMeansProperties:
    @given(point_sets(), st.data())
    @settings(max_examples=30, deadline=None)
    def test_labels_valid_and_inertia_nonnegative(self, points, data):
        k = data.draw(st.integers(1, points.shape[0]))
        result = kmeans(points, k, seed=0, n_init=1, max_iter=20)
        assert result.labels.shape == (points.shape[0],)
        assert result.labels.min() >= 0
        assert result.labels.max() < k
        assert result.inertia >= 0

    @given(point_sets(), st.data())
    @settings(max_examples=30, deadline=None)
    def test_assignment_is_nearest_centroid(self, points, data):
        k = data.draw(st.integers(1, min(4, points.shape[0])))
        result = kmeans(points, k, seed=0, n_init=1, max_iter=20)
        diff = points[:, None, :] - result.centroids[None, :, :]
        distances = (diff * diff).sum(axis=2)
        best = distances.min(axis=1)
        chosen = distances[np.arange(points.shape[0]), result.labels]
        assert np.allclose(chosen, best)


class TestBalancedProperties:
    @given(point_sets(), st.data())
    @settings(max_examples=30, deadline=None)
    def test_sizes_near_equal(self, points, data):
        n = points.shape[0]
        k = data.draw(st.integers(1, n))
        result = balanced_kmeans(points, k, seed=0, n_init=1, max_iter=20)
        sizes = result.sizes()
        assert sizes.sum() == n
        assert sizes.max() - sizes.min() <= 1

    @given(point_sets(), st.data())
    @settings(max_examples=20, deadline=None)
    def test_every_point_assigned_once(self, points, data):
        k = data.draw(st.integers(1, points.shape[0]))
        result = balanced_kmeans(points, k, seed=1, n_init=1, max_iter=20)
        total = sum(len(result.members(c)) for c in range(result.k))
        assert total == points.shape[0]
