"""Property-based tests: tracing never perturbs remapping semantics."""

import math
from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import obs
from repro.core import RemapConfig, RemappingEngine
from repro.infra import Assignment, Level, build_topology, two_level_spec
from repro.obs.metrics import Histogram
from repro.traces import TimeGrid, TraceSet

GRID = TimeGrid(0, 60, 24)


@st.composite
def remap_scenes(draw):
    """A random fleet on a random 2-4 leaf topology, contiguously placed."""
    leaves = draw(st.integers(2, 4))
    per_leaf = draw(st.integers(2, 4))
    n = leaves * per_leaf
    matrix = draw(
        hnp.arrays(
            dtype=np.float64,
            shape=(n, 24),
            elements=st.floats(0.1, 100, allow_nan=False, allow_infinity=False),
        )
    )
    topo = build_topology(two_level_spec("r", leaves=leaves, leaf_capacity=per_leaf))
    ids = [f"i{k}" for k in range(n)]
    traces = TraceSet(GRID, ids, matrix)
    leaf_names = topo.leaf_names()
    mapping = {ids[k]: leaf_names[k // per_leaf] for k in range(n)}
    return topo, Assignment(topo, mapping), traces


_samples = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False), max_size=200
)


def _filled(values) -> Histogram:
    histogram = Histogram()
    for value in values:
        histogram.observe(value)
    return histogram


class TestHistogramMergeProperties:
    @given(left=_samples, right=_samples)
    @settings(max_examples=50, deadline=None)
    def test_merge_moments_match_combined_stream(self, left, right):
        """Exact statistics of a merge equal those of the combined stream."""
        merged = _filled(left).merge(_filled(right))
        combined = left + right
        assert merged.count == len(combined)
        scale = max(1.0, math.fsum(abs(v) for v in combined))
        assert abs(merged.total - math.fsum(combined)) <= 1e-9 * scale
        if combined:
            assert merged.min == min(combined)
            assert merged.max == max(combined)
            assert abs(merged.mean - np.mean(combined)) <= 1e-9 * scale

    @given(left=_samples, right=_samples)
    @settings(max_examples=50, deadline=None)
    def test_merge_reservoir_bounded_and_from_inputs(self, left, right):
        merged = _filled(left).merge(_filled(right))
        reservoir = merged._reservoir
        assert len(reservoir) <= Histogram.RESERVOIR_SIZE
        assert len(reservoir) == min(len(left) + len(right), Histogram.RESERVOIR_SIZE)
        pool = set(left) | set(right)
        assert all(value in pool for value in reservoir)

    @given(values=_samples, quantile=st.floats(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_merge_with_empty_preserves_percentiles(self, values, quantile):
        """Merging in an empty histogram is an identity for percentiles."""
        merged = _filled(values).merge(Histogram())
        reference = _filled(values)
        got = merged.percentile(quantile)
        expected = reference.percentile(quantile)
        if math.isnan(expected):
            assert math.isnan(got)
        else:
            assert got == expected

    @given(values=_samples)
    @settings(max_examples=50, deadline=None)
    def test_percentile_bounds(self, values):
        """Any percentile of a non-empty histogram lies within [min, max]."""
        histogram = _filled(values)
        if not values:
            assert math.isnan(histogram.percentile(50))
            return
        for quantile in (0.0, 37.5, 50.0, 99.9, 100.0):
            result = histogram.percentile(quantile)
            assert histogram.min <= result <= histogram.max
        assert histogram.percentile(0) == min(values)
        assert histogram.percentile(100) == max(values)


class TestTracedRemapInvariants:
    @given(scene=remap_scenes(), max_swaps=st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_traced_run_conserves_fleet(self, scene, max_swaps):
        """Under an active tracer the engine still conserves the multiset of
        placed instances and every node's member count."""
        topo, assignment, traces = scene
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=max_swaps))
        with obs.tracing() as tracer:
            result = engine.run(assignment, traces)
        assert Counter(result.assignment.instance_ids()) == Counter(
            assignment.instance_ids()
        )
        assert result.assignment.occupancy() == assignment.occupancy()
        # The run is recorded exactly once.
        span = tracer.find("remap")
        assert span is not None
        assert span.calls == 1

    @given(scene=remap_scenes(), max_swaps=st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_traced_and_untraced_runs_agree(self, scene, max_swaps):
        """Tracing is observation only: identical swaps either way."""
        topo, assignment, traces = scene
        config = RemapConfig(level=Level.RPP, max_swaps=max_swaps)
        plain = RemappingEngine(config).run(assignment, traces)
        with obs.tracing():
            traced = RemappingEngine(config).run(assignment, traces)
        assert traced.assignment.as_mapping() == plain.assignment.as_mapping()
        assert traced.swaps == plain.swaps

    @given(scene=remap_scenes())
    @settings(max_examples=25, deadline=None)
    def test_swap_counters_are_consistent(self, scene):
        """accepted <= attempted, and accepted equals the reported swaps."""
        topo, assignment, traces = scene
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=8))
        with obs.tracing() as tracer:
            result = engine.run(assignment, traces)
        counters = tracer.find("remap").counters
        attempted = counters.get("remap.swaps_attempted", 0.0)
        accepted = counters.get("remap.swaps_accepted", 0.0)
        assert accepted <= attempted
        assert accepted == result.n_swaps

    @given(scene=remap_scenes())
    @settings(max_examples=15, deadline=None)
    def test_node_totals_consistent_under_tracing(self, scene):
        topo, assignment, traces = scene
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=8))
        with obs.tracing():
            result = engine.run(assignment, traces)
        for name, total in result.node_totals.items():
            fresh = np.zeros(GRID.n_samples)
            for instance_id in result.assignment.instances_under(name):
                fresh += traces.row(instance_id)
            np.testing.assert_allclose(total, fresh, rtol=0, atol=1e-9)
