"""Per-figure experiment drivers.

One function per table/figure of the paper's evaluation (Sec. 5).  Each
driver returns a structured result the benchmark harness formats into the
same rows/series the paper reports; EXPERIMENTS.md records the
paper-vs-measured comparison.

Datacenter construction is cached per process: the three fleets are shared
by every figure, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.statprof import FIGURE11_CONFIGS, provisioning_comparison
from ..core.clustering import balanced_kmeans
from ..core.asynchrony import score_matrix
from ..core.pipeline import EvaluationReport, SmoothOperator, SmoothOperatorConfig
from ..core.placement import PlacementConfig, WorkloadAwarePlacer
from ..datasets.facebook import (
    Datacenter,
    DatacenterSpec,
    build_datacenter,
    dc1_spec,
    dc2_spec,
    dc3_spec,
)
from ..infra.aggregation import NodePowerView
from ..infra.topology import Level, PowerTopology
from ..reshaping.conversion import ConversionPolicy
from ..reshaping.fleet import derive_demand, describe_fleet
from ..reshaping.lconv import learn_conversion_threshold
from ..engine import Engine, ScenarioSpec
from ..reshaping.runtime import ReshapingComparison
from ..reshaping.throttling import ThrottleBoostPolicy
from ..traces.percentiles import band_summary
from ..traces.service import extract_basis_traces, total_energy_by_service
from ..traces.traceset import TraceSet
from .embedding import TSNEConfig, tsne_embed

# ----------------------------------------------------------------------
# shared context
# ----------------------------------------------------------------------
_DATACENTER_CACHE: Dict[Tuple, Datacenter] = {}

#: Default experiment scale; override per-call for bigger studies.
DEFAULT_N_INSTANCES = 1440
DEFAULT_STEP_MINUTES = 10
DEFAULT_WEEKS = 3


def get_datacenter(
    name: str,
    *,
    n_instances: int = DEFAULT_N_INSTANCES,
    step_minutes: int = DEFAULT_STEP_MINUTES,
    weeks: int = DEFAULT_WEEKS,
) -> Datacenter:
    """Build (or fetch from cache) one of the three datacenters under study."""
    key = (name, n_instances, step_minutes, weeks)
    if key not in _DATACENTER_CACHE:
        spec = _spec_for(name, n_instances)
        _DATACENTER_CACHE[key] = build_datacenter(
            spec, weeks=weeks, step_minutes=step_minutes
        )
    return _DATACENTER_CACHE[key]


def _spec_for(name: str, n_instances: int) -> DatacenterSpec:
    factories = {"DC1": dc1_spec, "DC2": dc2_spec, "DC3": dc3_spec}
    if name not in factories:
        raise ValueError(f"unknown datacenter {name!r}; expected DC1/DC2/DC3")
    return factories[name](n_instances=n_instances)


DATACENTER_NAMES: Tuple[str, ...] = ("DC1", "DC2", "DC3")


# ----------------------------------------------------------------------
# placement study shared by Figures 9-11 and the reshaping experiments
# ----------------------------------------------------------------------
@dataclass
class PlacementStudy:
    """One datacenter optimised and evaluated on the held-out week."""

    datacenter: Datacenter
    optimized: "object"
    report: EvaluationReport

    @property
    def name(self) -> str:
        return self.datacenter.name


_PLACEMENT_CACHE: Dict[Tuple, PlacementStudy] = {}


def run_placement_study(
    dc: Datacenter, *, seed: int = 0, budget_margin: float = 0.0
) -> PlacementStudy:
    """Optimise a datacenter with SmoothOperator and evaluate vs baseline."""
    key = (id(dc), seed, budget_margin)
    if key in _PLACEMENT_CACHE:
        return _PLACEMENT_CACHE[key]
    operator = SmoothOperator(
        SmoothOperatorConfig(placement=PlacementConfig(seed=seed))
    )
    outcome = operator.optimize(dc.records, dc.topology)
    report = operator.evaluate(
        dc.records, dc.baseline, outcome.assignment, budget_margin=budget_margin
    )
    study = PlacementStudy(datacenter=dc, optimized=outcome, report=report)
    _PLACEMENT_CACHE[key] = study
    return study


# ----------------------------------------------------------------------
# Figure 5: top power-consumer breakdown
# ----------------------------------------------------------------------
def run_figure5(dc: Datacenter, *, top: int = 10) -> List[Tuple[str, float]]:
    """Per-service share of total power, largest first (Figure 5)."""
    energy = total_energy_by_service(dc.records)
    total = sum(energy.values())
    ranked = sorted(energy.items(), key=lambda item: (-item[1], item[0]))
    return [(service, value / total) for service, value in ranked[:top]]


# ----------------------------------------------------------------------
# Figure 6: diurnal percentile bands per service
# ----------------------------------------------------------------------
def run_figure6(
    dc: Datacenter, services: Optional[Sequence[str]] = None
) -> Dict[str, Dict[str, float]]:
    """Percentile-band summaries for representative services (Figure 6)."""
    if services is None:
        present = {record.service for record in dc.records}
        preferred = [
            s
            for s in ("frontend", "web", "db_a", "db", "hadoop", "batchjob")
            if s in present
        ]
        services = preferred[:3] if preferred else sorted(present)[:3]
    result: Dict[str, Dict[str, float]] = {}
    traces = dc.training_traces()
    for service in services:
        ids = [r.instance_id for r in dc.records if r.service == service]
        if not ids:
            raise ValueError(f"service {service!r} not present in {dc.name}")
        subset = traces.subset(ids)
        result[service] = band_summary(subset)
    return result


# ----------------------------------------------------------------------
# Figure 8: clustering in asynchrony space + t-SNE projection
# ----------------------------------------------------------------------
@dataclass
class ClusteringFigure:
    instance_ids: List[str]
    scores: np.ndarray
    labels: np.ndarray
    embedding: np.ndarray
    basis_services: List[str]

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.labels)


def run_figure8(
    dc: Datacenter,
    *,
    suite_index: int = 0,
    k: int = 6,
    tsne: Optional[TSNEConfig] = None,
    max_points: int = 400,
) -> ClusteringFigure:
    """Cluster one suite's instances and project to 2-D (Figure 8)."""
    suites = dc.topology.nodes_at_level(Level.SUITE)
    if not 0 <= suite_index < len(suites):
        raise IndexError(f"suite {suite_index} out of range")
    suite = suites[suite_index]
    ids = dc.baseline.instances_under(suite.name)
    if len(ids) > max_points:
        ids = ids[:: max(1, len(ids) // max_points)][:max_points]
    records = [r for r in dc.records if r.instance_id in set(ids)]
    traces = TraceSet.from_traces(
        {r.instance_id: r.training_trace for r in records}
    )
    basis = extract_basis_traces(dc.records, 10)
    scores = score_matrix(traces, basis)
    clustering = balanced_kmeans(scores, min(k, len(records)), seed=0)
    config = tsne if tsne is not None else TSNEConfig(n_iter=250, seed=0)
    embedding = tsne_embed(scores, config)
    return ClusteringFigure(
        instance_ids=[r.instance_id for r in records],
        scores=scores,
        labels=clustering.labels,
        embedding=embedding,
        basis_services=list(basis.ids),
    )


# ----------------------------------------------------------------------
# Figure 9: smoothing the children of one mid-level node
# ----------------------------------------------------------------------
@dataclass
class SmoothingFigure:
    node_name: str
    parent_peak_before: float
    parent_peak_after: float
    child_peaks_before: Dict[str, float]
    child_peaks_after: Dict[str, float]
    child_std_before: Dict[str, float]
    child_std_after: Dict[str, float]

    @property
    def sum_child_peaks_before(self) -> float:
        return sum(self.child_peaks_before.values())

    @property
    def sum_child_peaks_after(self) -> float:
        return sum(self.child_peaks_after.values())

    @property
    def child_peak_reduction(self) -> float:
        before = self.sum_child_peaks_before
        if before == 0:
            return 0.0
        return 1.0 - self.sum_child_peaks_after / before


def run_figure9(
    dc: Datacenter, *, level: str = Level.SB, seed: int = 0
) -> SmoothingFigure:
    """Re-place the subtree under one mid-level node and compare children.

    Reproduces Figure 9: the parent's trace is untouched (no instance moves
    into or out of the subtree), while children's traces become smoother
    and more balanced.  The node is chosen as the one with the most local
    de-fragmentation potential — the largest gap between the sum of its
    children's peaks and its own aggregate peak.  (A node whose subtree
    holds a single service block has no local potential: its children are
    already maximally synchronous, and only a cross-subtree move could
    help — which Figure 9 deliberately excludes.)
    """
    baseline_view = NodePowerView(dc.topology, dc.baseline, dc.test_traces())

    def potential(candidate) -> float:
        members = dc.baseline.instances_under(candidate.name)
        if len(members) < 2 or not candidate.children:
            return -1.0
        child_peaks = sum(
            baseline_view.node_peak(child.name) for child in candidate.children
        )
        own_peak = baseline_view.node_peak(candidate.name)
        return (child_peaks - own_peak) / child_peaks if child_peaks > 0 else -1.0

    candidates = dc.topology.nodes_at_level(level)
    node = max(candidates, key=potential)
    member_ids = set(dc.baseline.instances_under(node.name))
    records = [r for r in dc.records if r.instance_id in member_ids]
    if not records:
        raise ValueError(f"node {node.name} supplies no instances")

    subtree = PowerTopology(node)
    placer = WorkloadAwarePlacer(PlacementConfig(seed=seed))
    local = placer.place(records, subtree)

    test = dc.test_traces()
    before_view = NodePowerView(
        subtree,
        _restrict_assignment(dc, subtree, member_ids),
        test.subset([r.instance_id for r in records]),
    )
    after_view = NodePowerView(
        subtree, local.assignment, test.subset([r.instance_id for r in records])
    )

    children = [child.name for child in node.children]
    return SmoothingFigure(
        node_name=node.name,
        parent_peak_before=before_view.node_peak(node.name),
        parent_peak_after=after_view.node_peak(node.name),
        child_peaks_before={c: before_view.node_peak(c) for c in children},
        child_peaks_after={c: after_view.node_peak(c) for c in children},
        child_std_before={
            c: float(before_view.node_trace(c).values.std()) for c in children
        },
        child_std_after={
            c: float(after_view.node_trace(c).values.std()) for c in children
        },
    )


def _restrict_assignment(dc: Datacenter, subtree: PowerTopology, member_ids):
    from ..infra.assignment import Assignment

    mapping = {
        instance_id: dc.baseline.leaf_of(instance_id) for instance_id in member_ids
    }
    return Assignment(subtree, mapping)


# ----------------------------------------------------------------------
# Figure 10: peak reduction per level, per datacenter
# ----------------------------------------------------------------------
def run_figure10(
    names: Sequence[str] = DATACENTER_NAMES, **dc_kwargs
) -> Dict[str, Dict[str, float]]:
    """Per-level sum-of-peaks reduction for each datacenter (Figure 10).

    Also carries the "extra servers hosted" headline under the synthetic
    level key ``"extra_servers"``.
    """
    result: Dict[str, Dict[str, float]] = {}
    for name in names:
        dc = get_datacenter(name, **dc_kwargs)
        study = run_placement_study(dc)
        row = dict(study.report.peak_reduction)
        row["extra_servers"] = study.report.extra_server_fraction
        result[name] = row
    return result


# ----------------------------------------------------------------------
# Figure 11: required budget vs StatProf
# ----------------------------------------------------------------------
def run_figure11(
    name: str, configs=FIGURE11_CONFIGS, **dc_kwargs
) -> Dict[str, Dict[str, float]]:
    """The StatProf / SmoOp provisioning grid for one datacenter."""
    dc = get_datacenter(name, **dc_kwargs)
    study = run_placement_study(dc)
    test = dc.test_traces()
    optimized_view = NodePowerView(
        dc.topology, study.optimized.assignment, test
    )
    return provisioning_comparison(
        study.optimized.assignment, optimized_view, test, configs=configs
    )


# ----------------------------------------------------------------------
# Figures 12-14: dynamic power profile reshaping
# ----------------------------------------------------------------------
@dataclass
class ReshapingStudy:
    """Scenario comparison plus the knobs that produced it."""

    datacenter: Datacenter
    comparison: ReshapingComparison
    conversion_threshold: float
    extra_conversion: int
    extra_throttle_funded: int
    offpeak_mask: np.ndarray

    @property
    def name(self) -> str:
        return self.datacenter.name


_RESHAPING_CACHE: Dict[Tuple, ReshapingStudy] = {}


def run_reshaping_study(
    dc: Datacenter,
    *,
    peak_load: float = 0.85,
    throttle: Optional[ThrottleBoostPolicy] = None,
) -> ReshapingStudy:
    """Run all Sec. 4 scenarios for one datacenter (Figures 12-14)."""
    key = (id(dc), peak_load, id(throttle))
    if key in _RESHAPING_CACHE:
        return _RESHAPING_CACHE[key]
    study = run_placement_study(dc)
    root_budget = dc.topology.root.budget_watts
    if root_budget is None:
        raise RuntimeError("placement study did not provision budgets")

    fleet = describe_fleet(dc.records, budget_watts=root_budget)
    training_demand = derive_demand(dc.records, peak_load=peak_load, use_test=False)
    threshold = learn_conversion_threshold(training_demand, fleet.n_lc)
    conversion = ConversionPolicy(conversion_threshold=threshold)
    throttle = throttle if throttle is not None else ThrottleBoostPolicy()
    engine = Engine(fleet, conversion, throttle=throttle)

    def run(mode: str, demand, **spec_kwargs):
        spec = ScenarioSpec(
            mode=mode,
            fleet=fleet,
            demand=demand,
            conversion=conversion,
            throttle=throttle,
            **spec_kwargs,
        )
        return engine.run(spec).result

    extra = study.report.expansion.total_extra
    e_th = throttle.extra_conversion_servers(
        fleet.n_batch, fleet.batch_model, fleet.lc_model, n_lc=fleet.n_lc
    )

    base_demand = derive_demand(dc.records, peak_load=peak_load, use_test=True)
    grown = base_demand.scaled(1.0 + extra / fleet.n_lc)
    grown_more = base_demand.scaled(1.0 + (extra + e_th) / fleet.n_lc)

    comparison = ReshapingComparison(pre=run("pre", base_demand))
    comparison.scenarios["lc_only"] = run("lc_only", grown, extra_servers=extra)
    comparison.scenarios["conversion"] = run(
        "conversion", grown, extra_servers=extra
    )
    comparison.scenarios["throttle_boost"] = run(
        "throttle_boost", grown_more, extra_servers=extra, extra_throttle_funded=e_th
    )
    # Static strawman with the same fleet size and traffic as throttle_boost:
    # the Figure 14 baseline that isolates dynamic reshaping's slack effect.
    comparison.scenarios["lc_only_matched"] = run(
        "lc_only", grown_more, extra_servers=extra + e_th
    )

    offpeak = ~conversion.lc_heavy_mask(grown, fleet.n_lc)
    result = ReshapingStudy(
        datacenter=dc,
        comparison=comparison,
        conversion_threshold=threshold,
        extra_conversion=extra,
        extra_throttle_funded=e_th,
        offpeak_mask=offpeak,
    )
    _RESHAPING_CACHE[key] = result
    return result


# ----------------------------------------------------------------------
# Power-safety experiment (Sec. 3.2's claim, measured — not a paper figure)
# ----------------------------------------------------------------------
@dataclass
class PowerSafetyStudy:
    """Capping outcomes under a traffic surge, per placement."""

    datacenter: Datacenter
    surge_factor: float
    reports: Dict[str, "object"]

    def lc_shed(self, label: str) -> float:
        return self.reports[label].lc_energy_shed

    def event_steps(self, label: str) -> int:
        return self.reports[label].total_event_steps


def run_power_safety(
    name: str = "DC3",
    *,
    surge_factor: float = 1.25,
    surge_start_hour: float = 12.0,
    surge_end_hour: float = 16.0,
    budget_margin: float = 0.03,
    **dc_kwargs,
) -> PowerSafetyStudy:
    """Measure the paper's power-safety claim (Sec. 3.2).

    "When bursty traffic arrives, the sudden load change is now shared
    among all the power nodes ... decreas[ing] the likelihood of tripping
    the circuit breakers inside certain heavily-loaded power nodes."

    Protocol: budgets are provisioned bottom-up from the *baseline*
    placement's test week plus a small margin; then a surge multiplies the
    latency-critical instances' dynamic power during a daily window, and
    the Dynamo-style capping loop is run under both placements.  The
    workload-aware placement should need less capping — above all, less
    *latency-critical* capping.
    """
    from ..engine.capping import CappingSimulator
    from ..infra.budget import provision_hierarchical
    from ..traces.instance import ServiceKind
    from ..traces.perturbations import inject_surge

    dc = get_datacenter(name, **dc_kwargs)
    study = run_placement_study(dc)
    test = dc.test_traces()

    baseline_view = NodePowerView(dc.topology, dc.baseline, test)
    provision_hierarchical(baseline_view, margin=budget_margin)

    lc_ids = [
        r.instance_id for r in dc.records if r.kind == ServiceKind.LATENCY_CRITICAL
    ]
    surged = inject_surge(
        test,
        lc_ids,
        factor=surge_factor,
        start_hour=surge_start_hour,
        end_hour=surge_end_hour,
    )
    kinds = {r.instance_id: r.kind for r in dc.records}

    reports = {}
    for label, assignment in (
        ("oblivious", dc.baseline),
        ("smoothoperator", study.optimized.assignment),
    ):
        simulator = CappingSimulator(dc.topology, assignment, surged, kinds)
        reports[label] = simulator.run()
    return PowerSafetyStudy(
        datacenter=dc, surge_factor=surge_factor, reports=reports
    )


def run_figure12(name: str = "DC1", **dc_kwargs) -> ReshapingStudy:
    """Conversion time-series study for one datacenter (Figure 12)."""
    return run_reshaping_study(get_datacenter(name, **dc_kwargs))


def run_figure13(
    names: Sequence[str] = DATACENTER_NAMES, **dc_kwargs
) -> Dict[str, Dict[str, float]]:
    """Throughput improvement breakdown (Figure 13).

    Returns, per DC: LC and Batch improvement under conversion alone and
    with proactive throttling and boosting.
    """
    result: Dict[str, Dict[str, float]] = {}
    for name in names:
        study = run_reshaping_study(get_datacenter(name, **dc_kwargs))
        comparison = study.comparison
        result[name] = {
            "lc_conversion": comparison.lc_improvement("conversion"),
            "batch_conversion": comparison.batch_improvement("conversion"),
            "lc_throttle_boost": comparison.lc_improvement("throttle_boost"),
            "batch_throttle_boost": comparison.batch_improvement("throttle_boost"),
        }
    return result


def run_figure14(
    names: Sequence[str] = DATACENTER_NAMES, **dc_kwargs
) -> Dict[str, Dict[str, float]]:
    """Average and off-peak power-slack reduction (Figure 14).

    The reduction isolates *dynamic reshaping* (conversion + throttling/
    boosting): it compares ``throttle_boost`` against a static deployment of
    the same extra servers as LC-specific capacity (``lc_only_matched``).
    The ``vs_pre`` entries additionally report the reduction against the
    original, pre-expansion datacenter.
    """
    result: Dict[str, Dict[str, float]] = {}
    for name in names:
        study = run_reshaping_study(get_datacenter(name, **dc_kwargs))
        comparison = study.comparison
        result[name] = {
            "average": comparison.slack_reduction(
                "throttle_boost", baseline="lc_only_matched"
            ),
            "off_peak": comparison.slack_reduction(
                "throttle_boost", mask=study.offpeak_mask, baseline="lc_only_matched"
            ),
            "average_vs_pre": comparison.slack_reduction("throttle_boost"),
            "off_peak_vs_pre": comparison.slack_reduction(
                "throttle_boost", mask=study.offpeak_mask
            ),
        }
    return result
