"""Ablation: oracle vs reactive conversion control.

The reshaping runtime's scenario engine decides phases from the current
demand value — an oracle.  A production controller observes a trailing load
average, needs hysteresis, and pays a conversion delay.  This ablation
quantifies the gap on the DC1 test week: the paper's bet is that diurnal
load is predictable enough for a history-based controller to match the
oracle, and here the reactive controller indeed lands within ~1%.
"""

import numpy as np
import pytest

from repro.analysis import experiments as E
from repro.analysis.report import format_percent, format_table
from repro.reshaping import (
    ConversionPolicy,
    ReactiveConfig,
    ReactiveConversionRuntime,
    ReshapingRuntime,
    derive_demand,
    describe_fleet,
    learn_conversion_threshold,
)

SCALE = dict(n_instances=1440, step_minutes=10)


def _run():
    dc = E.get_datacenter("DC1", **SCALE)
    study = E.run_placement_study(dc)
    budget = dc.topology.root.budget_watts
    fleet = describe_fleet(dc.records, budget_watts=budget)
    training = derive_demand(dc.records, use_test=False)
    threshold = learn_conversion_threshold(training, fleet.n_lc)
    policy = ConversionPolicy(conversion_threshold=threshold)
    extra = study.report.expansion.total_extra
    demand = derive_demand(dc.records, use_test=True).scaled(1.0 + extra / fleet.n_lc)

    oracle = ReshapingRuntime(fleet, policy).run_conversion(demand, extra)
    results = {"oracle": oracle}
    for label, config in (
        ("reactive (30m delay)", ReactiveConfig(delay_steps=3)),
        ("reactive (2h delay)", ReactiveConfig(delay_steps=12)),
        ("reactive (sluggish: 1h window, 2h delay)",
         ReactiveConfig(observation_window_steps=6, delay_steps=12)),
    ):
        runtime = ReactiveConversionRuntime(fleet, policy, config=config)
        results[label] = runtime.run_conversion(demand, extra)
    return results


@pytest.mark.benchmark(group="ablation")
def test_ablation_reactive(benchmark, emit_report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    oracle = results["oracle"]
    rows = []
    for label, result in results.items():
        rows.append(
            [
                label,
                f"{result.lc_total() / oracle.lc_total():.4f}",
                f"{result.batch_total() / oracle.batch_total():.4f}",
                format_percent(result.dropped_fraction()),
                int(np.sum(np.abs(np.diff(result.n_lc_active)) > 0)),
            ]
        )
    emit_report(
        "ablation_reactive",
        format_table(
            ["controller", "LC vs oracle", "batch vs oracle", "dropped", "transitions"],
            rows,
            title="Ablation — oracle vs reactive conversion control (DC1, test week)",
        ),
    )

    for label, result in results.items():
        if label == "oracle":
            continue
        # The paper's bet: predictable diurnal load makes reactive ≈ oracle.
        assert result.lc_total() >= oracle.lc_total() * 0.97
        assert result.batch_total() >= oracle.batch_total() * 0.85
        assert result.dropped_fraction() < 0.02
