"""Unit tests for fragmentation metrics."""

import numpy as np
import pytest

from repro import obs
from repro.core import (
    fragmentation_report,
    node_asynchrony_scores,
    required_budget,
)
from repro.infra import Assignment, Level, NodePowerView, build_topology, two_level_spec
from repro.traces import TimeGrid, TraceSet


@pytest.fixture
def scene():
    grid = TimeGrid(0, 60, 24)
    up = np.linspace(0, 10, 24)
    down = np.linspace(10, 0, 24)
    topo = build_topology(two_level_spec("dc", leaves=2, leaf_capacity=4))
    traces = TraceSet(grid, ["u1", "u2", "d1", "d2"], np.vstack([up, up, down, down]))
    poor = Assignment(
        topo, {"u1": "dc/rpp0", "u2": "dc/rpp0", "d1": "dc/rpp1", "d2": "dc/rpp1"}
    )
    good = Assignment(
        topo, {"u1": "dc/rpp0", "d1": "dc/rpp0", "u2": "dc/rpp1", "d2": "dc/rpp1"}
    )
    return topo, traces, poor, good


class TestNodeAsynchrony:
    def test_poor_placement_scores_one(self, scene):
        _, traces, poor, _ = scene
        scores = node_asynchrony_scores(poor, traces, Level.RPP)
        assert all(s == pytest.approx(1.0) for s in scores.values())

    def test_good_placement_scores_two(self, scene):
        _, traces, _, good = scene
        scores = node_asynchrony_scores(good, traces, Level.RPP)
        assert all(s == pytest.approx(2.0) for s in scores.values())

    def test_empty_nodes_skipped(self, scene):
        topo, traces, _, _ = scene
        partial = Assignment(topo, {"u1": "dc/rpp0"})
        scores = node_asynchrony_scores(partial, traces, Level.RPP)
        assert set(scores) == {"dc/rpp0"}


class TestFragmentationReport:
    def test_report_levels(self, scene):
        _, traces, poor, _ = scene
        report = fragmentation_report(poor, traces)
        assert set(report) == {Level.DATACENTER, Level.RPP}

    def test_sum_of_peaks(self, scene):
        _, traces, poor, good = scene
        poor_rpp = fragmentation_report(poor, traces)[Level.RPP]
        good_rpp = fragmentation_report(good, traces)[Level.RPP]
        assert poor_rpp.sum_of_peaks > good_rpp.sum_of_peaks

    def test_worst_node(self, scene):
        topo, traces, _, _ = scene
        # rpp0 gets two synchronous, rpp1 gets the complementary pair.
        mixed = Assignment(
            topo,
            {"u1": "dc/rpp0", "u2": "dc/rpp0", "d1": "dc/rpp1", "d2": "dc/rpp0"},
        )
        report = fragmentation_report(mixed, traces)
        level = report[Level.RPP]
        assert level.worst_node() is not None
        assert level.min_asynchrony <= level.mean_asynchrony

    def test_worst_node_none_when_empty(self, scene):
        from repro.core.metrics import LevelFragmentation

        empty = LevelFragmentation(
            level="rpp", sum_of_peaks=0.0, node_peaks={}, node_asynchrony={}
        )
        assert empty.worst_node() is None
        assert empty.mean_asynchrony == 0.0


class TestRequiredBudget:
    def test_peak_budget(self, scene):
        topo, traces, poor, _ = scene
        view = NodePowerView(topo, poor, traces)
        assert required_budget(view, Level.RPP) == pytest.approx(40.0)

    def test_under_provisioned_budget_smaller(self, scene):
        topo, traces, poor, _ = scene
        view = NodePowerView(topo, poor, traces)
        full = required_budget(view, Level.RPP)
        shaved = required_budget(view, Level.RPP, under_provision=10)
        assert shaved < full

    def test_invalid_under_provision(self, scene):
        topo, traces, poor, _ = scene
        view = NodePowerView(topo, poor, traces)
        with pytest.raises(ValueError):
            required_budget(view, Level.RPP, under_provision=100)


class TestViewReuse:
    """Regression for the duplicated O(n·T) per-node aggregation."""

    def test_view_and_viewless_scores_agree(self, scene):
        topo, traces, poor, good = scene
        for assignment in (poor, good):
            view = NodePowerView(topo, assignment, traces)
            without = node_asynchrony_scores(assignment, traces, Level.RPP)
            with_view = node_asynchrony_scores(
                assignment, traces, Level.RPP, view=view
            )
            assert without == pytest.approx(with_view)

    def test_report_reuses_view_aggregates(self, scene):
        """fragmentation_report must never re-sum member rows per node: the
        span counters prove every aggregate came from the shared view."""
        _, traces, poor, _ = scene
        obs.reset_metrics()
        fragmentation_report(poor, traces)
        counters = obs.snapshot_metrics()["counters"]
        assert counters.get("metrics.node_aggregate_recomputed", 0.0) == 0.0
        assert counters.get("metrics.node_aggregate_reused", 0.0) > 0.0
        obs.reset_metrics()

    def test_viewless_path_counts_recomputes(self, scene):
        _, traces, poor, _ = scene
        obs.reset_metrics()
        node_asynchrony_scores(poor, traces, Level.RPP)
        counters = obs.snapshot_metrics()["counters"]
        assert counters.get("metrics.node_aggregate_recomputed", 0.0) == 2.0
        assert counters.get("metrics.node_aggregate_reused", 0.0) == 0.0
        obs.reset_metrics()
