"""Telemetry sanitisation: from dirty readings back to a clean TraceSet.

The strict trace containers (:class:`~repro.traces.series.PowerTrace`,
:class:`~repro.traces.traceset.TraceSet`) reject non-finite or negative
readings by design — silently accepting them would poison every aggregate
downstream.  This module is the explicit gate between raw sensor data and
that clean world: realign off-grid timestamps, flag stuck-at runs, despike
via a rolling percentile, interpolate the gaps, and report exactly how much
was repaired so callers can decide whether to trust the result.

The pipeline is idempotent to numerical tolerance: repairing already-clean
telemetry is a no-op, and repairing repaired telemetry changes nothing.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..traces.grid import TimeGrid
from ..traces.traceset import TraceSet
from .inject import RawTelemetry


@dataclass(frozen=True)
class RepairPolicy:
    """Knobs of the sanitisation pipeline.

    Attributes
    ----------
    despike_window:
        Width (in samples) of the rolling window used for despiking.
    despike_percentile:
        Percentile of the rolling window that forms the local baseline.
    despike_factor:
        A reading above ``despike_factor`` times the local baseline is a
        spike.  Generous by default: real diurnal peaks are nowhere near
        4x the local median.
    stuck_min_run:
        Minimum length of an exactly-constant run to be flagged as a
        stuck-at fault.  Runs on genuinely flat traces (zero dynamic range)
        are never flagged.
    max_dead_fraction:
        A trace missing more than this fraction of samples after fault
        marking is declared dead and zero-filled rather than interpolated.
    """

    despike_window: int = 12
    despike_percentile: float = 50.0
    despike_factor: float = 4.0
    stuck_min_run: int = 12
    max_dead_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.despike_window < 3:
            raise ValueError("despike_window must be at least 3")
        if not 0 <= self.despike_percentile <= 100:
            raise ValueError("despike_percentile must be in [0, 100]")
        if self.despike_factor <= 1:
            raise ValueError("despike_factor must exceed 1")
        if self.stuck_min_run < 2:
            raise ValueError("stuck_min_run must be at least 2")
        if not 0 < self.max_dead_fraction <= 1:
            raise ValueError("max_dead_fraction must be in (0, 1]")


@dataclass
class RepairReport:
    """What the sanitisation pipeline did, per fault class.

    All counts are samples (matrix cells) unless stated otherwise.
    ``dead_traces`` lists ids whose telemetry was beyond saving — their
    rows are zero-filled and callers should treat them as absent sensors.
    """

    n_samples_total: int = 0
    n_missing_input: int = 0
    n_negative: int = 0
    n_stuck: int = 0
    n_spikes: int = 0
    n_interpolated: int = 0
    realigned_minutes: int = 0
    dead_traces: List[str] = field(default_factory=list)

    @property
    def n_flagged(self) -> int:
        """Total samples invalidated by any detector."""
        return self.n_missing_input + self.n_negative + self.n_stuck + self.n_spikes

    @property
    def repaired_fraction(self) -> float:
        if self.n_samples_total == 0:
            return 0.0
        return self.n_flagged / self.n_samples_total

    def summary(self) -> Dict[str, float]:
        return {
            "missing": self.n_missing_input,
            "negative": self.n_negative,
            "stuck": self.n_stuck,
            "spikes": self.n_spikes,
            "interpolated": self.n_interpolated,
            "dead_traces": len(self.dead_traces),
            "repaired_fraction": self.repaired_fraction,
        }


@dataclass
class RepairOutcome:
    """A clean :class:`TraceSet` plus the audit trail that produced it."""

    traces: TraceSet
    report: RepairReport


# ----------------------------------------------------------------------
# pipeline stages
# ----------------------------------------------------------------------
def realign(telemetry: RawTelemetry, target_grid: TimeGrid) -> RawTelemetry:
    """Interpolate off-grid telemetry onto ``target_grid``.

    Handles clock skew (same shape, shifted timestamps): each trace is
    linearly interpolated at the canonical timestamps, holding the edge
    values beyond the observed span.  NaN samples stay NaN where the
    nearest source sample is NaN.
    """
    if telemetry.grid == target_grid:
        return telemetry.copy()
    if telemetry.grid.step_minutes != target_grid.step_minutes:
        raise ValueError(
            "realign only handles offset grids, not resampling: "
            f"step {telemetry.grid.step_minutes} vs {target_grid.step_minutes}"
        )
    source_t = telemetry.grid.timestamps().astype(np.float64)
    target_t = target_grid.timestamps().astype(np.float64)
    matrix = np.empty((len(telemetry.ids), target_grid.n_samples))
    for row in range(matrix.shape[0]):
        source = telemetry.matrix[row]
        valid = np.isfinite(source)
        if valid.sum() < 2:
            matrix[row] = np.nan
            continue
        matrix[row] = np.interp(target_t, source_t[valid], source[valid])
        # Re-poke holes where the nearest source sample was missing, so a
        # dropout does not silently become invented data before gap repair.
        nearest = np.clip(
            np.round((target_t - source_t[0]) / telemetry.grid.step_minutes),
            0,
            len(source) - 1,
        ).astype(int)
        matrix[row, ~valid[nearest]] = np.nan
    return RawTelemetry(target_grid, list(telemetry.ids), matrix)


def _stuck_mask(values: np.ndarray, min_run: int) -> np.ndarray:
    """Mask of exactly-constant runs of length >= min_run, per row.

    Rows with zero dynamic range (genuinely flat traces) are exempt.
    """
    mask = np.zeros_like(values, dtype=bool)
    n = values.shape[1]
    if n < min_run:
        return mask
    for row in range(values.shape[0]):
        series = values[row]
        finite = series[np.isfinite(series)]
        if finite.size == 0 or float(finite.max() - finite.min()) <= 1e-12:
            continue
        same = np.concatenate([[False], np.diff(series) == 0.0])
        # run-length encode the `same` flags
        idx = 0
        while idx < n:
            if same[idx]:
                start = idx - 1
                while idx < n and same[idx]:
                    idx += 1
                if idx - start >= min_run:
                    # Keep the first sample: it was a real reading.
                    mask[row, start + 1 : idx] = True
            else:
                idx += 1
    return mask


def _nan_percentile_lastaxis(windows: np.ndarray, q: float) -> np.ndarray:
    """``np.nanpercentile(windows, q, axis=-1)`` without its NaN slow path.

    With any NaN present, numpy routes nanpercentile through a per-slice
    Python loop — minutes on a (traces, samples, window) stack.  Sorting
    pushes NaNs to the end of each window, so the percentile is an order
    statistic over the first ``count`` entries, gathered vectorised with
    the same linear interpolation nanpercentile uses.
    """
    ordered = np.sort(windows, axis=-1)
    count = np.count_nonzero(np.isfinite(windows), axis=-1)
    pos = (q / 100.0) * (count - 1)
    lo = np.clip(np.floor(pos), 0, None).astype(np.intp)
    hi = np.clip(np.ceil(pos), 0, None).astype(np.intp)
    frac = np.clip(pos - lo, 0.0, 1.0)
    lo_val = np.take_along_axis(ordered, lo[..., np.newaxis], axis=-1)[..., 0]
    hi_val = np.take_along_axis(ordered, hi[..., np.newaxis], axis=-1)[..., 0]
    baseline = lo_val + frac * (hi_val - lo_val)
    return np.where(count > 0, baseline, np.nan)


def _spike_mask(values: np.ndarray, policy: RepairPolicy) -> np.ndarray:
    """Mask of samples far above the local rolling-percentile baseline."""
    n_rows, n = values.shape
    window = min(policy.despike_window, n)
    if window < 3:
        return np.zeros_like(values, dtype=bool)
    half = window // 2
    padded = np.pad(values, ((0, 0), (half, half)), mode="edge")
    windows = np.lib.stride_tricks.sliding_window_view(padded, window, axis=1)
    windows = windows[:, :n, :]
    # All-NaN windows (long dropouts) legitimately yield NaN baselines; the
    # comparison below treats them as "no spike".
    baseline = _nan_percentile_lastaxis(windows, policy.despike_percentile)
    with np.errstate(all="ignore"), warnings.catch_warnings():
        warnings.filterwarnings("ignore", message="All-NaN slice encountered")
        # Robust per-row scale so near-zero baselines don't flag tiny wiggles.
        scale = np.nanpercentile(values, 95, axis=1)
    scale = np.where(np.isfinite(scale), scale, 0.0)
    floor = 0.02 * scale[:, np.newaxis] + 1e-9
    threshold = policy.despike_factor * np.maximum(baseline, floor)
    with np.errstate(invalid="ignore"):
        return np.isfinite(values) & (values > threshold)


def _interpolate_gaps(
    values: np.ndarray, missing: np.ndarray, policy: RepairPolicy
) -> Tuple[np.ndarray, int, List[int]]:
    """Linearly fill missing samples per row; zero-fill dead rows."""
    filled = values.copy()
    n_interpolated = 0
    dead_rows: List[int] = []
    n = values.shape[1]
    index = np.arange(n)
    for row in range(values.shape[0]):
        holes = missing[row]
        if not holes.any():
            continue
        if holes.mean() > policy.max_dead_fraction or (~holes).sum() < 2:
            filled[row] = 0.0
            dead_rows.append(row)
            continue
        valid = ~holes
        filled[row, holes] = np.interp(index[holes], index[valid], values[row, valid])
        n_interpolated += int(holes.sum())
    return filled, n_interpolated, dead_rows


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def repair_telemetry(
    telemetry,
    *,
    policy: Optional[RepairPolicy] = None,
    target_grid: Optional[TimeGrid] = None,
) -> RepairOutcome:
    """Sanitise raw telemetry into a clean :class:`TraceSet`.

    Stages: realign to ``target_grid`` (defaults to the telemetry's own grid
    snapped back to a zero-offset start if misaligned), mark non-finite and
    negative readings, flag stuck-at runs and rolling-percentile spikes,
    interpolate every flagged sample, and zero-fill traces that are beyond
    repair.  Accepts a :class:`RawTelemetry` or (for convenience) an
    already-clean :class:`TraceSet`.
    """
    policy = policy if policy is not None else RepairPolicy()
    if isinstance(telemetry, TraceSet):
        telemetry = RawTelemetry.from_traceset(telemetry)

    report = RepairReport(n_samples_total=int(telemetry.matrix.size))

    if target_grid is None:
        offset = telemetry.grid.start_minute % telemetry.grid.step_minutes
        target_grid = (
            TimeGrid(
                telemetry.grid.start_minute - offset,
                telemetry.grid.step_minutes,
                telemetry.grid.n_samples,
            )
            if offset
            else telemetry.grid
        )
    if telemetry.grid != target_grid:
        report.realigned_minutes = abs(
            telemetry.grid.start_minute - target_grid.start_minute
        )
        telemetry = realign(telemetry, target_grid)

    values = telemetry.matrix.copy()

    missing = ~np.isfinite(values)
    report.n_missing_input = int(missing.sum())

    with np.errstate(invalid="ignore"):
        negative = np.isfinite(values) & (values < 0)
    report.n_negative = int(negative.sum())
    missing |= negative

    filled, n_interp, dead_rows = _interpolate_gaps(values, missing, policy)
    report.n_interpolated = n_interp
    dead = set(dead_rows)

    # Detect → re-fill on the filled matrix until a pass is a no-op.  One
    # pass is not a fixpoint — a spike inside a stuck run splits it below
    # ``stuck_min_run``, and an edge-filled gap forms a constant run that
    # only a later pass can see.  Each iteration operates on exactly what a
    # fresh call would see, so the loop stops precisely when another repair
    # would change nothing: idempotence by construction.
    for _ in range(32):
        stuck = _stuck_mask(filled, policy.stuck_min_run)
        spikes = _spike_mask(np.where(stuck, np.nan, filled), policy) & ~stuck
        flags = stuck | spikes
        if not flags.any():
            break
        report.n_stuck += int(stuck.sum())
        report.n_spikes += int(spikes.sum())
        filled, n_interp, new_dead = _interpolate_gaps(filled, flags, policy)
        report.n_interpolated += n_interp
        dead.update(new_dead)
    report.dead_traces = [telemetry.ids[row] for row in sorted(dead)]

    clean = np.maximum(filled, 0.0)
    return RepairOutcome(
        traces=TraceSet(target_grid, list(telemetry.ids), clean),
        report=report,
    )
