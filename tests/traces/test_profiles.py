"""Unit tests for service power-profile archetypes."""

import numpy as np
import pytest

from repro.traces import (
    CANONICAL_PROFILES,
    ServiceKind,
    ServiceProfile,
    cache_profile,
    db_profile,
    dev_profile,
    hadoop_profile,
    media_profile,
    web_profile,
)

HOURS = np.linspace(0, 24, 240, endpoint=False)


class TestValidation:
    def test_unknown_shape(self):
        with pytest.raises(ValueError):
            ServiceProfile(name="x", shape="sawtooth")

    def test_peak_below_idle(self):
        with pytest.raises(ValueError):
            ServiceProfile(name="x", idle_watts=200, peak_watts=100)

    def test_bad_peak_hour(self):
        with pytest.raises(ValueError):
            ServiceProfile(name="x", peak_hour=24.0)

    def test_negative_jitter(self):
        with pytest.raises(ValueError):
            ServiceProfile(name="x", phase_jitter_hours=-1)

    def test_nonpositive_sharpness(self):
        with pytest.raises(ValueError):
            ServiceProfile(name="x", sharpness=0)


class TestActivityShapes:
    def test_diurnal_peaks_at_peak_hour(self):
        profile = web_profile()
        activity = profile.activity(HOURS)
        peak_hour = HOURS[activity.argmax()]
        assert abs(peak_hour - profile.peak_hour) < 0.5

    def test_diurnal_bounded(self):
        activity = web_profile().activity(HOURS)
        assert activity.max() <= 1.0 + 1e-12
        assert activity.min() >= 0.0

    def test_nocturnal_peaks_at_night(self):
        profile = db_profile()
        activity = profile.activity(HOURS)
        assert HOURS[activity.argmax()] < 6

    def test_flat_is_constant(self):
        activity = hadoop_profile().activity(HOURS)
        assert np.allclose(activity, 1.0)

    def test_double_peak_has_two_maxima(self):
        activity = media_profile().activity(HOURS)
        # Count strict local maxima over the periodic signal.
        rolled_prev = np.roll(activity, 1)
        rolled_next = np.roll(activity, -1)
        peaks = np.sum((activity > rolled_prev) & (activity > rolled_next))
        assert peaks == 2

    def test_office_plateau_flat_midday(self):
        profile = dev_profile()
        activity = profile.activity(HOURS)
        midday = activity[(HOURS > 11) & (HOURS < 16)]
        assert midday.min() > 0.8 * activity.max()

    def test_office_quiet_at_night(self):
        activity = dev_profile().activity(HOURS)
        night = activity[(HOURS > 0) & (HOURS < 4)]
        assert night.max() < 0.3


class TestHeterogeneity:
    def test_scaling(self):
        base = web_profile()
        scaled = base.with_heterogeneity(2.0)
        assert scaled.phase_jitter_hours == pytest.approx(2 * base.phase_jitter_hours)
        assert scaled.amplitude_jitter == pytest.approx(2 * base.amplitude_jitter)
        assert scaled.baseline_jitter == pytest.approx(2 * base.baseline_jitter)

    def test_zero_heterogeneity(self):
        scaled = web_profile().with_heterogeneity(0.0)
        assert scaled.phase_jitter_hours == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            web_profile().with_heterogeneity(-1)

    def test_preserves_other_fields(self):
        base = cache_profile()
        scaled = base.with_heterogeneity(0.5)
        assert scaled.idle_watts == base.idle_watts
        assert scaled.peak_hour == base.peak_hour


class TestCanonical:
    def test_registry_complete(self):
        assert {"web", "cache", "db", "hadoop"} <= set(CANONICAL_PROFILES)

    def test_kinds(self):
        assert CANONICAL_PROFILES["web"].kind == ServiceKind.LATENCY_CRITICAL
        assert CANONICAL_PROFILES["hadoop"].kind == ServiceKind.BATCH
        assert CANONICAL_PROFILES["db"].kind == ServiceKind.STORAGE

    def test_swing(self):
        profile = web_profile()
        assert profile.swing_watts == pytest.approx(
            profile.peak_watts - profile.idle_watts
        )

    def test_custom_name(self):
        assert web_profile("frontend").name == "frontend"
