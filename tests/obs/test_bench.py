"""Unit tests for the BENCH_*.json benchmark emitter."""

import json

from repro import obs
from repro.obs import bench_path, stage_timings, update_bench
from repro.obs.bench import REPO_ROOT


class TestBenchPath:
    def test_default_root_is_repo_root(self):
        assert bench_path("pipeline") == REPO_ROOT / "BENCH_pipeline.json"
        assert (REPO_ROOT / "ROADMAP.md").exists()  # sanity: right directory

    def test_custom_root(self, tmp_path):
        assert bench_path("x", tmp_path) == tmp_path / "BENCH_x.json"


class TestUpdateBench:
    def test_creates_document(self, tmp_path):
        path = update_bench("pipeline", "stages", [{"stage": "place"}], root=tmp_path)
        document = json.loads(path.read_text())
        assert document["benchmark"] == "pipeline"
        assert document["sections"]["stages"] == [{"stage": "place"}]
        assert "updated_at" in document

    def test_merges_sections(self, tmp_path):
        update_bench("pipeline", "stages", {"a": 1}, root=tmp_path)
        path = update_bench("pipeline", "scale", {"b": 2}, root=tmp_path)
        document = json.loads(path.read_text())
        assert document["sections"] == {"stages": {"a": 1}, "scale": {"b": 2}}

    def test_section_overwrite(self, tmp_path):
        update_bench("remap", "remap", {"swaps": 1}, root=tmp_path)
        path = update_bench("remap", "remap", {"swaps": 5}, root=tmp_path)
        assert json.loads(path.read_text())["sections"]["remap"] == {"swaps": 5}

    def test_recovers_from_corrupt_file(self, tmp_path):
        target = bench_path("pipeline", tmp_path)
        target.write_text("{not json")
        path = update_bench("pipeline", "stages", {"ok": True}, root=tmp_path)
        assert json.loads(path.read_text())["sections"]["stages"] == {"ok": True}


class TestStageTimings:
    def test_merges_same_named_spans(self):
        with obs.tracing() as tracer:
            with obs.span("place"):
                for _ in range(3):
                    with obs.span("score") as span:
                        span.add("pairs", 10)
        rows = stage_timings(tracer)
        by_name = {row["stage"]: row for row in rows}
        assert set(by_name) == {"place", "score"}
        assert by_name["score"]["calls"] == 3
        assert by_name["score"]["counters"] == {"pairs": 30.0}
        assert by_name["place"]["wall_s"] >= by_name["score"]["wall_s"]

    def test_rows_in_execution_order(self):
        with obs.tracing() as tracer:
            with obs.span("synthesize"):
                pass
            with obs.span("place"):
                with obs.span("cluster"):
                    pass
        names = [row["stage"] for row in stage_timings(tracer)]
        assert names == ["synthesize", "place", "cluster"]
