"""Runtime faults and recovery for the reshaping scenarios.

The paper's Sec. 4 runtime simulates a failure-free fleet: every conversion
lands instantly and no server ever dies.  This module exposes the failure
modes a production fleet actually has:

* **server failures** — a :class:`ServerFailureSchedule` takes groups of LC
  or Batch servers offline for contiguous windows;
* **flaky conversions** — a :class:`ConversionFaultModel` gives every
  conversion a landing latency and a per-attempt failure probability with
  bounded retry/backoff; servers mid-conversion idle in neither pool;
* **emergency capping fallback** — whenever a scenario's ``total_power``
  exceeds the budget, the hierarchical capping loop
  (:class:`~repro.engine.capping.CappingSimulator`) sheds the excess by
  service class down to the policy floors, with a forced-shutdown last
  resort, so the recovered scenario reports ``overload_steps() == 0`` and
  zero breaker trips by construction.

.. deprecated::
    :class:`ChaosReshapingRuntime` is now a thin shim over
    :class:`repro.engine.Engine` and **no longer subclasses**
    :class:`~repro.reshaping.runtime.ReshapingRuntime`: the fault layering
    that used to be subclass overrides is a pipeline of engine policies
    (:class:`repro.engine.ConversionFaultPolicy`,
    :class:`repro.engine.ServerFailurePolicy`,
    :class:`repro.engine.EmergencyCapping`).  The fault models and result
    types live in :mod:`repro.engine.faults` and are re-exported here
    unchanged.  Results are bit-identical to the pre-refactor runtime
    (pinned by the golden parity suite in ``tests/engine/``).
"""

from __future__ import annotations

from typing import Optional

from .._compat import _deprecated
from ..engine.faults import (  # noqa: F401  (re-export)
    BATCH_POOL,
    LC_POOL,
    ChaosRunResult,
    ConversionFaultModel,
    ConversionLog,
    FailureEvent,
    RecoveryReport,
    ServerFailureSchedule,
)
from ..engine.state import FleetDescription, ScenarioResult  # noqa: F401
from ..infra.breaker import BreakerModel
from ..reshaping.conversion import ConversionPolicy
from ..reshaping.runtime import _EngineBackedRuntime
from ..engine.capping import CappingPolicy, CappingReport  # noqa: F401
from ..sim.demand import DemandTrace


class ChaosReshapingRuntime(_EngineBackedRuntime):
    """A reshaping runtime that survives a hostile fleet.

    Layers server failures, flaky conversions, and the emergency capping
    fallback over the Sec. 4 scenarios.  With the default fault models
    (no failures, instant conversions) it reproduces the clean runtime
    exactly.

    .. deprecated::
        A shim over :class:`repro.engine.Engine`; see the module note.
        Notably this class shares only the engine-backed base with
        :class:`~repro.reshaping.runtime.ReshapingRuntime` — it is *not*
        a subclass of it any more.
    """

    def __init__(
        self,
        fleet: FleetDescription,
        conversion: ConversionPolicy,
        *,
        throttle=None,
        dvfs=None,
        failures: Optional[ServerFailureSchedule] = None,
        conversion_faults: Optional[ConversionFaultModel] = None,
        breaker: Optional[BreakerModel] = None,
        capping_policy=None,
        seed: int = 0,
    ) -> None:
        _deprecated(
            "ChaosReshapingRuntime is deprecated; build a chaos-mode "
            "ScenarioSpec and run it through repro.engine.Engine "
            "(results are bit-identical)"
        )
        super().__init__(
            fleet,
            conversion,
            throttle=throttle,
            dvfs=dvfs,
            failures=failures,
            conversion_faults=conversion_faults,
            breaker=breaker,
            capping_policy=capping_policy,
            seed=seed,
        )

    # -- chaos-specific model accessors ---------------------------------
    @property
    def failures(self) -> ServerFailureSchedule:
        return self._engine.failures

    @property
    def conversion_faults(self) -> ConversionFaultModel:
        return self._engine.conversion_faults

    @property
    def breaker(self) -> BreakerModel:
        return self._engine.breaker

    @property
    def capping_policy(self):
        return self._engine.capping_policy

    @property
    def seed(self) -> int:
        return self._engine.seed

    # ------------------------------------------------------------------
    def run_conversion_chaos(
        self, demand: DemandTrace, extra_servers: int
    ) -> ChaosRunResult:
        """The conversion scenario under runtime faults, then recovered."""
        spec = self._spec("conversion_chaos", demand, extra_servers=extra_servers)
        return self._engine.run(spec).result

    def run_throttle_boost_chaos(
        self,
        demand: DemandTrace,
        extra_conversion: int,
        extra_throttle_funded: Optional[int] = None,
    ) -> ChaosRunResult:
        """The throttle/boost scenario run clean, then recovered.

        Throttling and boosting are datacenter-initiated DVFS writes, which
        in practice succeed; the interesting faults are the conversions and
        failures exercised by :meth:`run_conversion_chaos`.  This entry
        point still routes the boosted scenario through the emergency
        fallback so a mis-sized budget cannot trip a breaker.
        """
        spec = self._spec(
            "throttle_boost_chaos",
            demand,
            extra_servers=extra_conversion,
            extra_throttle_funded=extra_throttle_funded,
        )
        return self._engine.run(spec).result

    # ------------------------------------------------------------------
    def recover(self, scenario: ScenarioResult) -> ChaosRunResult:
        """Route an over-budget scenario through the capping fallback.

        Delegates to :meth:`repro.engine.Engine.recover`.
        """
        return self._engine.recover(scenario)
