"""Shared plumbing for the legacy deprecation shims.

The shim modules (``repro.reshaping.runtime``, ``repro.faults.runtime``,
``repro.infra.capping``) each delegate bit-identically to their canonical
engine home; the only behaviour they add is one :class:`DeprecationWarning`.
That warning is emitted through the single helper here so every shim is a
one-liner and the warning category/stacklevel policy lives in one place.
"""

from __future__ import annotations

import warnings


def _deprecated(message: str, *, stacklevel: int = 3) -> None:
    """Emit the canonical shim DeprecationWarning.

    ``stacklevel=3`` points at the shim's *caller* when invoked from inside
    a shim ``__init__``; module-level shims pass ``stacklevel=2``.
    """
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
