"""Parallel scenario execution: fan specs out to worker processes.

:func:`run_many` drives a list of :class:`~repro.engine.spec.ScenarioSpec`
/ :class:`~repro.engine.spec.ChaosSpec` through a process pool.  Specs are
plain picklable dataclasses and every run is seeded, so results are
bit-identical regardless of worker count — the determinism test in
``tests/engine/test_parity.py`` pins ``workers=4 == workers=1``.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Any, List, Sequence

from .spec import ChaosSpec, ScenarioSpec
from .state import RunArtifacts


def execute(spec: Any) -> RunArtifacts:
    """Run one spec (scenario or chaos-harness) and wrap the artifacts.

    Module-level so it pickles for :func:`run_many`'s worker processes.
    """
    if isinstance(spec, ScenarioSpec):
        from .core import Engine

        return Engine.from_spec(spec).run(spec)
    if isinstance(spec, ChaosSpec):
        # Lazy: the chaos harness imports the engine, not vice versa.
        from ..faults.harness import run_chaos_scenario
        from ..obs import events as obs_events

        outcome = run_chaos_scenario(spec.resolved_scenario(), **spec.run_kwargs())
        return RunArtifacts(
            spec=spec,
            result=outcome,
            events=obs_events.get_event_log(),
        )
    raise TypeError(f"cannot execute spec of type {type(spec).__name__}")


def run_many(specs: Sequence[Any], *, workers: int = 1) -> List[RunArtifacts]:
    """Execute many specs, optionally across worker processes.

    Results come back in spec order.  ``workers <= 1`` runs serially in
    this process (cheapest for small batches and the only option on
    single-CPU hosts); otherwise a process pool executes the specs with a
    ``fork`` context where available, so workers inherit warm dataset
    caches instead of re-synthesizing them.
    """
    specs = list(specs)
    if workers <= 1 or len(specs) <= 1:
        return [execute(spec) for spec in specs]
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - fork unavailable (non-POSIX)
        mp_context = multiprocessing.get_context()
    n_workers = min(workers, len(specs))
    with ProcessPoolExecutor(max_workers=n_workers, mp_context=mp_context) as pool:
        return list(pool.map(execute, specs))
