"""Property-based round-trip tests for persistence."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.infra import (
    Assignment,
    build_topology,
    load_assignment,
    save_assignment,
    topology_from_dict,
    topology_to_dict,
    two_level_spec,
)
from repro.traces import TimeGrid, TraceSet, load_trace_set, save_trace_set

GRID = TimeGrid(0, 60, 24)


def trace_set_strategy(max_traces=6):
    return st.integers(1, max_traces).flatmap(
        lambda n: hnp.arrays(
            dtype=np.float64,
            shape=(n, 24),
            elements=st.floats(0, 1e6, allow_nan=False, allow_infinity=False),
        ).map(lambda m: TraceSet(GRID, [f"t{i}" for i in range(m.shape[0])], m))
    )


class TestTraceSetRoundTrip:
    @given(traces=trace_set_strategy())
    @settings(max_examples=25, deadline=None)
    def test_npz_roundtrip_exact(self, traces, tmp_path_factory):
        path = tmp_path_factory.mktemp("ts") / "t.npz"
        save_trace_set(traces, path)
        loaded = load_trace_set(path)
        assert loaded.ids == traces.ids
        assert loaded.grid == traces.grid
        assert np.array_equal(loaded.matrix, traces.matrix)


class TestTopologyRoundTrip:
    @given(
        st.integers(1, 6),
        st.integers(1, 10),
        st.lists(st.floats(0, 1e6, allow_nan=False), min_size=0, max_size=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_dict_roundtrip(self, leaves, capacity, budgets):
        topo = build_topology(two_level_spec("p", leaves=leaves, leaf_capacity=capacity))
        for node, budget in zip(topo.nodes(), budgets):
            node.budget_watts = budget
        rebuilt = topology_from_dict(topology_to_dict(topo))
        assert [n.name for n in rebuilt.nodes()] == [n.name for n in topo.nodes()]
        for a, b in zip(topo.nodes(), rebuilt.nodes()):
            assert a.budget_watts == b.budget_watts
            assert a.capacity == b.capacity
            assert a.level == b.level


class TestAssignmentRoundTrip:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_json_roundtrip(self, data, tmp_path_factory):
        leaves = data.draw(st.integers(1, 4))
        capacity = data.draw(st.integers(1, 5))
        topo = build_topology(two_level_spec("a", leaves=leaves, leaf_capacity=capacity))
        leaf_names = topo.leaf_names()
        n = data.draw(st.integers(0, leaves * capacity))
        mapping = {}
        counts = {name: 0 for name in leaf_names}
        for i in range(n):
            options = [name for name in leaf_names if counts[name] < capacity]
            choice = data.draw(st.sampled_from(options))
            mapping[f"i{i}"] = choice
            counts[choice] += 1
        assignment = Assignment(topo, mapping)
        path = tmp_path_factory.mktemp("a") / "a.json"
        save_assignment(assignment, path)
        loaded = load_assignment(path)
        assert loaded.as_mapping() == mapping
