"""Figure 6: diurnal percentile bands for web / db / hadoop.

Paper: web swings hard with a daytime peak; db peaks at night (backup
compression); hadoop is constantly high.  Bands (p5-p95 ... p45-p55) show
instance-level heterogeneity.
"""

import pytest

from repro.analysis import experiments as E
from repro.analysis.report import format_percent, format_table, sparkline
from repro.traces import percentile_bands


def _run(full_scale):
    dc = E.get_datacenter("DC1", **full_scale)
    services = ["frontend", "db_a", "batchjob"]
    summary = E.run_figure6(dc, services=services)
    traces = dc.training_traces()
    medians = {}
    for service in services:
        ids = [r.instance_id for r in dc.records if r.service == service]
        subset = traces.subset(ids)
        band = percentile_bands(subset, bands=[(45, 55)])[0]
        medians[service] = (band.lower + band.upper) / 2.0
    return summary, medians


@pytest.mark.benchmark(group="figure6")
def test_fig06_diurnal_bands(benchmark, emit_report, full_scale):
    summary, medians = benchmark.pedantic(
        _run, args=(full_scale,), rounds=1, iterations=1
    )

    rows = [
        (
            service,
            f"{stats['median_peak']:.1f}",
            f"{stats['median_valley']:.1f}",
            format_percent(stats["diurnal_swing"]),
            format_percent(stats["heterogeneity"]),
        )
        for service, stats in summary.items()
    ]
    table = format_table(
        ["service", "median peak W", "median valley W", "diurnal swing", "p5-p95 spread"],
        rows,
        title="Figure 6 — diurnal patterns (DC1, training weeks)",
    )
    sparks = "\n".join(
        f"{service:<10} {sparkline(values[:432])}"  # first 3 days
        for service, values in medians.items()
    )
    emit_report("fig06_diurnal", table + "\n\nmedian power, first 3 days:\n" + sparks)

    # Shape: web-like swings hard, hadoop barely, db in between; the paper's
    # Figure 6 shows exactly this ordering.
    assert summary["frontend"]["diurnal_swing"] > 0.3
    assert summary["batchjob"]["diurnal_swing"] < 0.2
    assert (
        summary["frontend"]["diurnal_swing"]
        > summary["db_a"]["diurnal_swing"]
        > summary["batchjob"]["diurnal_swing"]
    )
