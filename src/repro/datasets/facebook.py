"""Facebook-like datacenter datasets (DC1, DC2, DC3).

The paper evaluates on three production Facebook datacenters.  We cannot use
those; instead each DC here is a synthetic fleet whose *structure* mirrors
what the paper reports about them:

* **service mix** — reconstructed from the Figure 5 top-10 power-consumer
  breakdowns (DC1 dominated by frontend+cache, DC2 by hadoop and lab/dev
  machines, DC3 heavily latency-critical);
* **instance heterogeneity** — Sec. 5.2.1: "the degree of heterogeneity
  among instance power traces found in DC1 is much smaller than that in
  DC3"; we scale per-instance jitter accordingly (DC1 < DC2 < DC3);
* **original placement balance** — Sec. 5.2.1: DC1's baseline placement is
  "more balanced compared to DC3"; the oblivious baseline's ``mixing`` knob
  encodes that (DC1 highest, DC3 zero).

Together these drive the Figure 10 ordering (RPP peak reduction:
DC1 < DC2 < DC3) and the Figure 13/14 ordering (reshaping gains smallest in
DC3, which has the smallest Batch share).
"""

from __future__ import annotations

import math

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from ..baselines.oblivious import oblivious_placement
from ..infra.assignment import Assignment
from ..infra.builder import TopologySpec, build_topology, ocp_spec
from ..infra.topology import PowerTopology
from ..traces.instance import InstanceRecord
from ..traces.profiles import (
    ServiceProfile,
    cache_profile,
    db_profile,
    dev_profile,
    hadoop_profile,
    media_profile,
    search_profile,
    storage_profile,
    web_profile,
)
from ..traces.synthesis import TraceSynthesizer, test_trace_set, training_trace_set
from ..traces.traceset import TraceSet


@dataclass(frozen=True)
class DatacenterSpec:
    """Everything needed to synthesise one datacenter reproducibly."""

    name: str
    composition: Tuple[Tuple[ServiceProfile, float], ...]
    heterogeneity: float
    baseline_mixing: float
    topology: TopologySpec
    n_instances: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_instances <= 0:
            raise ValueError("n_instances must be positive")
        if self.heterogeneity < 0:
            raise ValueError("heterogeneity cannot be negative")
        if not 0 <= self.baseline_mixing <= 1:
            raise ValueError("baseline_mixing must be in [0, 1]")
        total = sum(fraction for _, fraction in self.composition)
        if total <= 0:
            raise ValueError("composition fractions must sum to a positive value")
        capacity = self.topology.total_capacity()
        if capacity is not None and self.n_instances > capacity:
            raise ValueError(
                f"{self.n_instances} instances exceed topology capacity {capacity}"
            )

    def instance_counts(self) -> List[Tuple[ServiceProfile, int]]:
        """Integer instance counts via largest-remainder apportionment.

        Composition fractions are *power* shares (Figure 5 reports the
        breakdown of average power, not machine counts), so each service's
        instance weight is its share divided by the expected mean draw of
        one of its servers.
        """
        weights = [
            (profile, fraction / profile.expected_mean_watts())
            for profile, fraction in self.composition
        ]
        total_weight = sum(weight for _, weight in weights)
        raw = [
            (profile, weight / total_weight * self.n_instances)
            for profile, weight in weights
        ]
        counts = [int(share) for _, share in raw]
        remainders = sorted(
            range(len(raw)), key=lambda i: raw[i][1] - counts[i], reverse=True
        )
        shortfall = self.n_instances - sum(counts)
        for i in remainders[:shortfall]:
            counts[i] += 1
        return [
            (profile, count)
            for (profile, _), count in zip(raw, counts)
            if count > 0
        ]


@dataclass
class Datacenter:
    """A materialised datacenter: fleet, topology, and original placement."""

    spec: DatacenterSpec
    records: List[InstanceRecord]
    topology: PowerTopology
    baseline: Assignment

    @property
    def name(self) -> str:
        return self.spec.name

    def training_traces(self) -> TraceSet:
        return training_trace_set(self.records)

    def test_traces(self) -> TraceSet:
        return test_trace_set(self.records)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts


def build_datacenter(
    spec: DatacenterSpec, *, weeks: int = 3, step_minutes: int = 10
) -> Datacenter:
    """Synthesise the fleet, build the tree, lay the oblivious baseline."""
    synthesizer = TraceSynthesizer(
        weeks=weeks, step_minutes=step_minutes, seed=spec.seed
    )
    composition = [
        (profile.with_heterogeneity(spec.heterogeneity), count)
        for profile, count in spec.instance_counts()
    ]
    records = synthesizer.fleet(composition)
    topology = build_topology(spec.topology)
    baseline = oblivious_placement(
        records, topology, mixing=spec.baseline_mixing, seed=spec.seed
    )
    return Datacenter(
        spec=spec, records=records, topology=topology, baseline=baseline
    )


# ----------------------------------------------------------------------
# The three datacenters under study
# ----------------------------------------------------------------------
def _scaled_topology(
    name: str, n_instances: int, *, target_fill: float = 0.9375
) -> TopologySpec:
    """A four-level OCP tree (4 suites x 2 MSB x 2 SB x 3 RPP) whose rack
    count and rack size scale with the fleet so occupancy stays near
    ``target_fill``.

    A fixed tree with a small fleet would leave most racks empty and let
    the service-grouped baseline pack densely while the optimiser spreads
    thinly -- an artifact, not a result.  At the default 1440-instance scale
    this yields the familiar 4/8/16/48/192-node tree.
    """
    n_rpps = 4 * 2 * 2 * 3
    slots_per_rpp = n_instances / target_fill / n_rpps
    racks_per_rpp = max(1, round(slots_per_rpp / 8))
    servers_per_rack = max(1, math.ceil(slots_per_rpp / racks_per_rpp))
    return ocp_spec(
        name,
        suites=4,
        msbs_per_suite=2,
        sbs_per_msb=2,
        rpps_per_sb=3,
        racks_per_rpp=racks_per_rpp,
        servers_per_rack=servers_per_rack,
    )


def dc1_spec(*, n_instances: int = 1440, seed: int = 101, scale: int = 1) -> DatacenterSpec:
    """DC1: frontend/cache-heavy, low heterogeneity, fairly balanced baseline.

    Figure 5 (DC1): frontend 20.8%, cache 20.1%, db A 8.3%, batchjob 8.3%,
    dev 7.8%, searchindex 7.8%, labserver 5.7%, mobiledev 5.2%, ...
    """
    composition = (
        (web_profile("frontend"), 0.208),
        (cache_profile("cache"), 0.201),
        (db_profile("db_a"), 0.083),
        (hadoop_profile("batchjob"), 0.083),
        (search_profile("searchindex"), 0.078),
        (dev_profile("dev"), 0.078),
        (dev_profile("labserver"), 0.057),
        (media_profile("mobiledev"), 0.052),
        (storage_profile("photostorage"), 0.047),
        (replace(db_profile("db_b"), peak_hour=4.0), 0.045),
        (storage_profile("misc"), 0.068),
    )
    return DatacenterSpec(
        name="DC1",
        composition=composition,
        heterogeneity=0.5,
        baseline_mixing=0.55,
        topology=_scaled_topology("dc1", n_instances * scale),
        n_instances=n_instances * scale,
        seed=seed,
    )


def dc2_spec(*, n_instances: int = 1440, seed: int = 202, scale: int = 1) -> DatacenterSpec:
    """DC2: hadoop/lab-heavy with a sizable db tier; moderate heterogeneity.

    Figure 5 (DC2): hadoop 25.9%, labserver 15.3%, db A 13.1%, batch 8.3%,
    dev 7.8%, frontend 7.2%, ...
    """
    composition = (
        (hadoop_profile("hadoop"), 0.259),
        (dev_profile("labserver"), 0.153),
        (db_profile("db_a"), 0.131),
        (hadoop_profile("batchjob"), 0.083),
        (dev_profile("dev"), 0.078),
        (web_profile("frontend"), 0.072),
        (storage_profile("photostorage"), 0.054),
        (search_profile("search"), 0.051),
        (cache_profile("cache"), 0.049),
        (media_profile("service_x"), 0.047),
        (storage_profile("misc"), 0.023),
    )
    return DatacenterSpec(
        name="DC2",
        composition=composition,
        heterogeneity=1.0,
        baseline_mixing=0.15,
        topology=_scaled_topology("dc2", n_instances * scale),
        n_instances=n_instances * scale,
        seed=seed,
    )


def dc3_spec(*, n_instances: int = 1440, seed: int = 303, scale: int = 1) -> DatacenterSpec:
    """DC3: strongly latency-critical mix, high heterogeneity, fully
    service-grouped original placement — the biggest placement win and the
    smallest reshaping win (few Batch instances to borrow budget from).

    Figure 5 (DC3): frontend 21.5%, cache 19.0%, hadoop 16.9%, db A 13.5%,
    mobiledev 13.1%, search 12.8%, ...
    """
    composition = (
        (web_profile("frontend"), 0.215),
        (cache_profile("cache"), 0.190),
        (hadoop_profile("hadoop"), 0.169),
        (db_profile("db_a"), 0.135),
        (media_profile("mobiledev"), 0.131),
        (search_profile("search"), 0.128),
        (replace(web_profile("instagram"), peak_hour=16.5), 0.046),
        (replace(db_profile("db_b"), peak_hour=4.0), 0.047),
        (dev_profile("labserver"), 0.042),
    )
    return DatacenterSpec(
        name="DC3",
        composition=composition,
        heterogeneity=1.5,
        baseline_mixing=0.0,
        topology=_scaled_topology("dc3", n_instances * scale),
        n_instances=n_instances * scale,
        seed=seed,
    )


def small_demo_spec(
    *, name: str = "demo", n_instances: int = 120, seed: int = 7
) -> DatacenterSpec:
    """A small, fast datacenter for examples and tests.

    Two suites, 16 racks, a representative five-service mix.  Builds in
    well under a second; placement gains are visible but less dramatic than
    the full DC1-3 fleets.
    """
    topology = ocp_spec(
        name,
        suites=2,
        msbs_per_suite=1,
        sbs_per_msb=2,
        rpps_per_sb=2,
        racks_per_rpp=2,
        servers_per_rack=10,
    )
    composition = (
        (web_profile("web"), 0.30),
        (cache_profile("cache"), 0.20),
        (db_profile("db"), 0.20),
        (hadoop_profile("hadoop"), 0.20),
        (search_profile("search"), 0.10),
    )
    return DatacenterSpec(
        name=name,
        composition=composition,
        heterogeneity=1.0,
        baseline_mixing=0.0,
        topology=topology,
        n_instances=n_instances,
        seed=seed,
    )


def all_datacenter_specs(
    *, n_instances: int = 1440, scale: int = 1
) -> List[DatacenterSpec]:
    """Specs for the three datacenters under study, in paper order."""
    return [
        dc1_spec(n_instances=n_instances, scale=scale),
        dc2_spec(n_instances=n_instances, scale=scale),
        dc3_spec(n_instances=n_instances, scale=scale),
    ]
