"""Fault models and chaos-run result types for the engine.

The canonical home of the runtime-fault dataclasses that historically
lived in ``repro.faults.runtime`` (which still re-exports them):

* :class:`ServerFailureSchedule` — groups of LC or Batch servers offline
  for contiguous windows;
* :class:`ConversionFaultModel` — landing latency and per-attempt failure
  probability with bounded retry/backoff for conversion actions;
* :class:`RecoveryReport` / :class:`ChaosRunResult` — the audit trail and
  result wrapper of the emergency capping fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..infra.breaker import BreakerModel, BreakerTrip
from ..traces.grid import TimeGrid
from ..traces.series import PowerTrace
from .capping import CappingReport
from .state import ScenarioResult

#: Pools a failure event can hit.
LC_POOL = "lc"
BATCH_POOL = "batch"


@dataclass(frozen=True)
class FailureEvent:
    """One group of servers offline for a contiguous window."""

    start_index: int
    duration_samples: int
    n_servers: int
    pool: str = LC_POOL

    def __post_init__(self) -> None:
        if self.start_index < 0:
            raise ValueError("start_index cannot be negative")
        if self.duration_samples <= 0:
            raise ValueError("duration_samples must be positive")
        if self.n_servers <= 0:
            raise ValueError("n_servers must be positive")
        if self.pool not in (LC_POOL, BATCH_POOL):
            raise ValueError(f"pool must be {LC_POOL!r} or {BATCH_POOL!r}")


@dataclass(frozen=True)
class ServerFailureSchedule:
    """When and where servers die over the simulated span."""

    events: Tuple[FailureEvent, ...] = ()

    def lost_servers(self, n_samples: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-step offline counts ``(lc_lost, batch_lost)``."""
        lc = np.zeros(n_samples)
        batch = np.zeros(n_samples)
        for event in self.events:
            stop = min(event.start_index + event.duration_samples, n_samples)
            if event.start_index >= n_samples:
                continue
            target = lc if event.pool == LC_POOL else batch
            target[event.start_index : stop] += event.n_servers
        return lc, batch

    def downtime_server_steps(self, n_samples: int) -> float:
        lc, batch = self.lost_servers(n_samples)
        return float(lc.sum() + batch.sum())

    @classmethod
    def random(
        cls,
        grid: TimeGrid,
        *,
        n_lc: int,
        n_batch: int,
        events_per_week: float = 4.0,
        mean_duration_hours: float = 4.0,
        group_fraction: float = 0.02,
        seed: int = 0,
    ) -> "ServerFailureSchedule":
        """Poisson failure arrivals sized like rack-level outages.

        Each event takes roughly ``group_fraction`` of its pool offline for
        an exponentially-distributed window.  Events are split between the
        pools in proportion to their size.
        """
        if events_per_week < 0 or mean_duration_hours <= 0:
            raise ValueError("need non-negative rate and positive duration")
        if not 0 < group_fraction <= 1:
            raise ValueError("group_fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        n_events = int(rng.poisson(events_per_week * grid.n_weeks))
        total = max(n_lc + n_batch, 1)
        mean_duration_samples = max(
            1, int(round(mean_duration_hours * 60 / grid.step_minutes))
        )
        events: List[FailureEvent] = []
        for _ in range(n_events):
            pool = LC_POOL if rng.random() < n_lc / total else BATCH_POOL
            pool_size = n_lc if pool == LC_POOL else n_batch
            if pool_size == 0:
                continue
            group = max(1, int(round(group_fraction * pool_size)))
            duration = max(1, int(rng.exponential(mean_duration_samples)))
            start = int(rng.integers(0, grid.n_samples))
            events.append(
                FailureEvent(
                    start_index=start,
                    duration_samples=duration,
                    n_servers=group,
                    pool=pool,
                )
            )
        return cls(events=tuple(events))


@dataclass(frozen=True)
class SpikeEvent:
    """One correlated power burst: extra fleet draw for a contiguous window.

    Models the spikes the Γ-robust accounting defends against — a group of
    co-located instances simultaneously jumping from their nominal draw
    toward ``p_c + p_r`` (deploy waves, cache flushes, synchronized load).
    """

    start_index: int
    duration_samples: int
    extra_watts: float

    def __post_init__(self) -> None:
        if self.start_index < 0:
            raise ValueError("start_index cannot be negative")
        if self.duration_samples <= 0:
            raise ValueError("duration_samples must be positive")
        if self.extra_watts < 0:
            raise ValueError("extra_watts cannot be negative")


@dataclass(frozen=True)
class PowerSpikeSchedule:
    """When correlated spike bursts hit the fleet, and how hard."""

    events: Tuple[SpikeEvent, ...] = ()

    def extra_power(self, n_samples: int) -> np.ndarray:
        """Per-step extra draw from all bursts (overlaps stack)."""
        extra = np.zeros(n_samples)
        for event in self.events:
            if event.start_index >= n_samples:
                continue
            stop = min(event.start_index + event.duration_samples, n_samples)
            extra[event.start_index : stop] += event.extra_watts
        return extra

    def spike_watt_minutes(self, n_samples: int, step_minutes: float) -> float:
        return float(self.extra_power(n_samples).sum()) * step_minutes

    @classmethod
    def random(
        cls,
        grid: TimeGrid,
        *,
        bursts_per_week: float = 6.0,
        mean_duration_minutes: float = 30.0,
        extra_watts_low: float,
        extra_watts_high: float,
        seed: int = 0,
    ) -> "PowerSpikeSchedule":
        """Poisson burst arrivals with uniform magnitudes.

        Durations are exponential around ``mean_duration_minutes`` but
        floored at one sample, so every burst is visible to the breaker's
        persistence check when it lasts long enough.
        """
        if bursts_per_week < 0 or mean_duration_minutes <= 0:
            raise ValueError("need non-negative rate and positive duration")
        if not 0 <= extra_watts_low <= extra_watts_high:
            raise ValueError("need 0 <= extra_watts_low <= extra_watts_high")
        rng = np.random.default_rng(seed)
        n_bursts = int(rng.poisson(bursts_per_week * grid.n_weeks))
        mean_samples = max(1, int(round(mean_duration_minutes / grid.step_minutes)))
        events: List[SpikeEvent] = []
        for _ in range(n_bursts):
            events.append(
                SpikeEvent(
                    start_index=int(rng.integers(0, grid.n_samples)),
                    duration_samples=max(1, int(rng.exponential(mean_samples))),
                    extra_watts=float(
                        rng.uniform(extra_watts_low, extra_watts_high)
                    ),
                )
            )
        return cls(events=tuple(events))


@dataclass
class ConversionLog:
    """What happened to the conversions of one pool during a run."""

    n_transitions: int = 0
    n_failed_attempts: int = 0
    n_aborted: int = 0
    delayed_server_steps: float = 0.0


@dataclass(frozen=True)
class ConversionFaultModel:
    """Latency and failure semantics for conversion actions.

    A conversion *into* a pool takes ``latency_steps`` to land; each attempt
    fails with probability ``failure_prob`` and is retried after an
    exponential backoff (``backoff_steps`` doubling per retry), at most
    ``max_retries`` times.  If every attempt fails the transition aborts and
    the servers stay out of the pool until the next phase change.  Leaving a
    pool is immediate — stopping work needs no handshake.
    """

    latency_steps: int = 0
    failure_prob: float = 0.0
    max_retries: int = 3
    backoff_steps: int = 1

    def __post_init__(self) -> None:
        if self.latency_steps < 0:
            raise ValueError("latency_steps cannot be negative")
        if not 0 <= self.failure_prob < 1:
            raise ValueError("failure_prob must be in [0, 1)")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.backoff_steps < 0:
            raise ValueError("backoff_steps cannot be negative")

    def realize(
        self, target: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, ConversionLog]:
        """The pool occupancy actually achieved for a target schedule.

        ``target`` is the desired per-step number of extra servers in the
        pool.  The realised schedule is pointwise at most the target:
        upward transitions lag by latency and retries (or abort), downward
        transitions apply immediately.
        """
        target = np.asarray(target, dtype=np.float64)
        realized = np.empty_like(target)
        log = ConversionLog()
        current = float(target[0])
        realized[0] = current
        pending_level: Optional[float] = None
        pending_ready = 0
        for t in range(1, len(target)):
            want = float(target[t])
            if want <= current:
                current = want
                pending_level = None
            else:
                if pending_level != want:
                    log.n_transitions += 1
                    failures = 0
                    while failures <= self.max_retries and (
                        rng.random() < self.failure_prob
                    ):
                        failures += 1
                    if failures > self.max_retries:
                        log.n_failed_attempts += failures
                        log.n_aborted += 1
                        pending_level = want
                        pending_ready = len(target) + 1  # never lands
                    else:
                        log.n_failed_attempts += failures
                        delay = (failures + 1) * self.latency_steps + sum(
                            self.backoff_steps * (2**i) for i in range(failures)
                        )
                        pending_level = want
                        pending_ready = t + delay
                if t >= pending_ready:
                    current = want
                    pending_level = None
            realized[t] = current
            log.delayed_server_steps += max(want - current, 0.0)
        return realized, log


@dataclass
class RecoveryReport:
    """Audit trail of the emergency fallback for one chaos run."""

    engaged: bool
    trips_before: List[BreakerTrip] = field(default_factory=list)
    trips_after: List[BreakerTrip] = field(default_factory=list)
    overload_steps_before: int = 0
    overload_steps_after: int = 0
    capping: Optional[CappingReport] = None
    forced_shutdown_watt_minutes: float = 0.0
    conversion_lc: Optional[ConversionLog] = None
    conversion_batch: Optional[ConversionLog] = None
    failure_downtime_server_steps: float = 0.0

    @property
    def lc_energy_shed(self) -> float:
        """LC watt-minutes shed by the capping fallback (QoS damage)."""
        return self.capping.lc_energy_shed if self.capping is not None else 0.0


@dataclass
class ChaosRunResult:
    """A recovered scenario plus how the runtime got there."""

    scenario: ScenarioResult
    raw: ScenarioResult
    recovery: RecoveryReport

    def power_safe(self, breaker: Optional[BreakerModel] = None) -> bool:
        breaker = breaker if breaker is not None else BreakerModel()
        trace = PowerTrace(
            self.scenario.grid, np.maximum(self.scenario.total_power, 0.0)
        )
        return not breaker.trips(trace, self.scenario.budget_watts)
