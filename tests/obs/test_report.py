"""The unified run report (repro.obs.report)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import report as obs_report
from repro.obs.report import RunReportCollector, TaskStats


@pytest.fixture(autouse=True)
def _clean_collector():
    obs.reset_report()
    yield
    obs.reset_report()


def _stage_tasks():
    return [
        TaskStats(shard_id=0, worker_pid=101, exec_s=1.0, cpu_s=0.9, roundtrip_s=1.1, queue_s=0.1),
        TaskStats(shard_id=1, worker_pid=102, exec_s=3.0, cpu_s=2.8, roundtrip_s=3.2, queue_s=0.2),
        TaskStats(shard_id=2, worker_pid=101, exec_s=2.0, cpu_s=1.9, roundtrip_s=2.1, queue_s=0.1),
    ]


class TestStageSummary:
    def test_imbalance_is_max_over_mean_exec(self):
        collector = RunReportCollector()
        record = collector.record_stage(
            "score.shard", workers=2, wall_s=4.0, tasks=_stage_tasks()
        )
        summary = record.summary()
        assert summary["mean_exec_s"] == pytest.approx(2.0)
        assert summary["max_exec_s"] == pytest.approx(3.0)
        assert summary["imbalance"] == pytest.approx(1.5)

    def test_per_worker_utilization(self):
        collector = RunReportCollector()
        record = collector.record_stage(
            "score.shard", workers=2, wall_s=4.0, tasks=_stage_tasks()
        )
        per_worker = record.summary()["per_worker"]
        assert per_worker["101"]["tasks"] == 2
        assert per_worker["101"]["busy_s"] == pytest.approx(3.0)
        assert per_worker["101"]["utilization"] == pytest.approx(0.75)
        assert per_worker["102"]["utilization"] == pytest.approx(0.75)

    def test_slowest_shards_ranked(self):
        collector = RunReportCollector()
        record = collector.record_stage(
            "score.shard", workers=2, wall_s=4.0, tasks=_stage_tasks()
        )
        slowest = record.summary()["slowest_shards"]
        assert [entry["shard_id"] for entry in slowest] == [1, 2, 0]

    def test_retries_and_failures_counted(self):
        tasks = [
            TaskStats(shard_id=0, worker_pid=1, attempt=2, exec_s=1.0),
            TaskStats(shard_id=0, worker_pid=1, attempt=1, exec_s=0.5, ok=False),
        ]
        collector = RunReportCollector()
        summary = collector.record_stage(
            "s", workers=2, wall_s=1.0, tasks=tasks
        ).summary()
        assert summary["retries"] == 1
        assert summary["failures"] == 1
        # Failed attempts do not pollute the imbalance statistics.
        assert summary["mean_exec_s"] == pytest.approx(1.0)

    def test_empty_stage_has_defined_statistics(self):
        collector = RunReportCollector()
        summary = collector.record_stage("s", workers=2, wall_s=0.0).summary()
        assert summary["imbalance"] == 1.0
        assert summary["mean_exec_s"] == 0.0
        assert summary["per_worker"] == {}


class TestBuildReport:
    def test_totals_aggregate_across_stages(self):
        obs_report.record_stage("a", workers=2, wall_s=4.0, tasks=_stage_tasks())
        obs_report.record_stage(
            "b",
            workers=2,
            wall_s=2.0,
            tasks=[TaskStats(shard_id=0, worker_pid=101, exec_s=2.0)],
        )
        report = obs_report.build_report()
        assert report["schema"] == "repro.run_report/v1"
        assert report["totals"]["stages"] == 2
        assert report["totals"]["tasks"] == 4
        assert report["totals"]["wall_s"] == pytest.approx(6.0)
        assert report["totals"]["worker_pids"] == ["101", "102"]
        assert report["totals"]["per_worker_utilization"]["101"] == pytest.approx(5.0 / 6.0)

    def test_spans_embedded_when_tracer_live(self):
        obs_report.record_stage("a", workers=2, wall_s=1.0)
        with obs.tracing():
            with obs.span("outer"):
                pass
            report = obs_report.build_report()
        assert [s["name"] for s in report["spans"]] == ["outer"]
        assert "spans" not in obs_report.build_report()

    def test_json_serializable_and_renderable(self):
        obs_report.record_stage("a", workers=2, wall_s=4.0, tasks=_stage_tasks())
        report = json.loads(json.dumps(obs_report.build_report()))
        text = obs_report.render_report(report)
        assert "imbalance 1.50x" in text
        assert "pid 101" in text


class TestWriteAndAutowrite:
    def test_write_report(self, tmp_path):
        obs_report.record_stage("a", workers=2, wall_s=1.0, tasks=_stage_tasks())
        path = obs_report.write_report(tmp_path / "report.json")
        payload = json.loads(path.read_text())
        assert payload["totals"]["tasks"] == 3

    def test_env_autowrite_on_every_stage(self, tmp_path, monkeypatch):
        destination = tmp_path / "auto.json"
        monkeypatch.setenv(obs_report.REPORT_ENV, str(destination))
        obs_report.record_stage("a", workers=2, wall_s=1.0)
        assert json.loads(destination.read_text())["totals"]["stages"] == 1
        obs_report.record_stage("b", workers=2, wall_s=1.0)
        assert json.loads(destination.read_text())["totals"]["stages"] == 2

    def test_no_autowrite_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(obs_report.REPORT_ENV, raising=False)
        assert obs_report.report_path() is None
