"""Property-based tests for the Γ-robust accounting invariants.

The three structural guarantees the module documents:

* Γ = 0 reduces exactly to nominal accounting;
* Γ ≥ |S| reduces exactly to worst-case (every instance at ``p_c + p_r``);
* robust headroom is monotonically non-increasing in Γ.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infra import Assignment, build_topology, two_level_spec
from repro.robust import (
    GammaAccountant,
    UncertainPowerModel,
    gamma_sum,
    robust_load,
    robust_node_headroom,
)

finite_watts = st.floats(0.0, 1e4, allow_nan=False, allow_infinity=False)


@st.composite
def power_models(draw):
    n = draw(st.integers(1, 30))
    nominal = [draw(finite_watts) for _ in range(n)]
    radius = [draw(finite_watts) for _ in range(n)]
    ids = [f"i{k}" for k in range(n)]
    return UncertainPowerModel(ids, nominal, radius)


@st.composite
def placed_fleets(draw):
    """A model plus an assignment of its instances onto a budgeted tree."""
    model = draw(power_models())
    leaves = draw(st.integers(1, 4))
    topology = build_topology(
        two_level_spec("prop", leaves=leaves, leaf_capacity=len(model))
    )
    leaf_names = [leaf.name for leaf in topology.leaves()]
    mapping = {
        iid: leaf_names[draw(st.integers(0, leaves - 1))] for iid in model.ids
    }
    budget = draw(st.floats(0.0, 1e6, allow_nan=False))
    for node in topology.nodes():
        node.budget_watts = budget
    return model, topology, Assignment(topology, mapping)


class TestGammaSumInvariants:
    @given(power_models())
    @settings(max_examples=50, deadline=None)
    def test_gamma_zero_is_exactly_nominal(self, model):
        assert robust_load(model.nominal, model.radius, 0) == float(
            model.nominal.sum()
        )

    @given(power_models(), st.integers(0, 40))
    @settings(max_examples=50, deadline=None)
    def test_gamma_at_least_n_is_exactly_worst_case(self, model, extra):
        gamma = len(model) + extra
        # Equality up to summation order: Σn + Σr vs Σ(n + r).
        np.testing.assert_allclose(
            robust_load(model.nominal, model.radius, gamma),
            float((model.nominal + model.radius).sum()),
            rtol=1e-12,
        )

    @given(power_models())
    @settings(max_examples=50, deadline=None)
    def test_gamma_sum_is_nondecreasing_in_gamma(self, model):
        sums = [gamma_sum(model.radius, g) for g in range(len(model) + 2)]
        for smaller, larger in zip(sums, sums[1:]):
            assert larger >= smaller - 1e-9

    @given(power_models(), st.integers(0, 35))
    @settings(max_examples=50, deadline=None)
    def test_accountant_agrees_with_the_closed_form(self, model, gamma):
        acc = GammaAccountant(gamma)
        for iid in model.ids:
            acc.add(iid, model.nominal_of(iid), model.radius_of(iid))
        expected = robust_load(model.nominal, model.radius, gamma)
        assert abs(acc.robust_load() - expected) < 1e-6


class TestRobustHeadroomInvariants:
    @given(placed_fleets())
    @settings(max_examples=25, deadline=None)
    def test_headroom_is_monotonically_nonincreasing_in_gamma(self, fleet):
        model, topology, assignment = fleet
        previous = None
        for gamma in range(len(model) + 2):
            headroom = robust_node_headroom(topology, assignment, model, gamma)
            if previous is not None:
                for name, slack in headroom.items():
                    assert slack <= previous[name] + 1e-9
            previous = headroom

    @given(placed_fleets())
    @settings(max_examples=25, deadline=None)
    def test_gamma_zero_headroom_is_budget_minus_nominal(self, fleet):
        model, topology, assignment = fleet
        headroom = robust_node_headroom(topology, assignment, model, 0)
        for node in topology.nodes():
            members = assignment.instances_under(node.name)
            nominal = sum(model.nominal_of(iid) for iid in members)
            np.testing.assert_allclose(
                headroom[node.name], node.budget_watts - nominal, atol=1e-6
            )
