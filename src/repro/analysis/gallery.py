"""Figure gallery: build the paper's figures as HTML/SVG pages.

Couples the experiment drivers to the SVG toolkit in
:mod:`repro.analysis.figures`.  Each builder returns the page string and
(optionally) writes it; ``render_all`` regenerates the whole gallery.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..infra.topology import Level
from ..traces.percentiles import percentile_bands
from . import experiments as E
from .figures import (
    LineSeries,
    data_table,
    figure_page,
    grouped_bar_chart,
    horizontal_bar_chart,
    multi_panel_lines,
    scatter_chart,
    write_figure,
)

PathLike = Union[str, pathlib.Path]

DAY_LABELS = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun", ""]


def _week_labels(n_days: int = 7) -> List[str]:
    return DAY_LABELS[: n_days + 1]


# ----------------------------------------------------------------------
def build_figure5(datacenters) -> str:
    """Figure 5: top power-consumer breakdown per datacenter.

    The paper uses pies; part-to-whole with ~10 slices reads better as
    ranked bars (same data, honest magnitudes), one panel per DC.
    """
    sections = []
    table_rows = []
    for dc in datacenters:
        breakdown = E.run_figure5(dc)
        sections.append(
            horizontal_bar_chart(
                [(service, share * 100) for service, share in breakdown],
                title=f"{dc.name} — top power consumers (share of 30-day energy)",
            )
        )
        for service, share in breakdown:
            table_rows.append([dc.name, service, f"{share:.1%}"])
    svg = "".join(sections)
    table = data_table(["DC", "service", "share"], table_rows)
    return figure_page(
        "Figure 5 — power breakdown of the top consumers",
        "Reconstructed service mixes; fractions are power shares, converted "
        "to instance counts via each archetype's expected mean draw",
        svg,
        table,
    )


def build_figure8(dc, *, k: int = 6, max_points: int = 300) -> str:
    """Figure 8: t-SNE projection of the asynchrony-score space, coloured
    by balanced k-means cluster."""
    figure = E.run_figure8(dc, k=k, max_points=max_points)
    labels = [f"cluster {i}" for i in range(int(figure.labels.max()) + 1)]
    points = [
        (float(x), float(y), int(c))
        for (x, y), c in zip(figure.embedding, figure.labels)
    ]
    svg = scatter_chart(
        points,
        labels,
        title=(
            "one suite's instances in asynchrony-score space "
            f"(t-SNE projection; basis: {', '.join(figure.basis_services[:5])}, ...)"
        ),
    )
    sizes = figure.cluster_sizes()
    table = data_table(
        ["cluster", "instances"],
        [[label, int(size)] for label, size in zip(labels, sizes)],
    )
    return figure_page(
        "Figure 8 — clustering in asynchrony-score space",
        f"{dc.name}: balanced k-means (k={len(sizes)}) over I-to-S "
        "asynchrony-score vectors, projected to 2-D with t-SNE",
        svg,
        table,
    )


def build_figure11(name: str, grid: Dict[str, Dict[str, float]]) -> str:
    """Figure 11: required budget, StatProf vs SmoOp, per level."""
    levels = [Level.DATACENTER, Level.SUITE, Level.MSB, Level.SB, Level.RPP]
    labels = sorted(next(iter(grid.values())).keys())
    series = [
        (label, [grid[level][label] * 100 for level in levels]) for label in labels
    ]
    # 8 series exceeds the direct-label budget; keep the four headline ones
    # in the chart and let the table carry the full grid.
    headline = [s for s in series if s[0] in (
        "StatProf(0, 0)", "SmoOp(0, 0)", "StatProf(10, 0.1)", "SmoOp(10, 0.1)",
    )]
    svg = grouped_bar_chart(
        [level.upper() for level in levels],
        headline,
        title=f"{name} — normalised required power budget (lower is better)",
        value_suffix="",
        height=320,
    )
    table = data_table(
        ["level"] + labels,
        [
            [level] + [f"{grid[level][label]:.3f}" for label in labels]
            for level in levels
        ],
    )
    return figure_page(
        "Figure 11 — required budget vs statistical multiplexing",
        "100 = provisioning every instance at its own peak; StatProf "
        "multiplexes percentiles, SmoOp aggregates time-aligned traces",
        svg,
        table,
    )


def build_figure6(dc, services: Optional[Sequence[str]] = None) -> str:
    """Figure 6: diurnal percentile bands for three archetype services."""
    if services is None:
        present = {r.service for r in dc.records}
        services = [
            s
            for s in ("frontend", "web", "db_a", "db", "hadoop", "batchjob")
            if s in present
        ][:3]
    traces = dc.training_traces()
    panels = []
    table_rows = []
    for service in services:
        ids = [r.instance_id for r in dc.records if r.service == service]
        subset = traces.subset(ids)
        band = percentile_bands(subset, bands=[(5, 95)])[0]
        median = np.percentile(subset.matrix, 50, axis=0)
        panels.append(
            (
                service,
                [LineSeries(service, median, band=(band.lower, band.upper))],
            )
        )
        table_rows.append(
            [
                service,
                f"{median.max():.1f}",
                f"{median.min():.1f}",
                f"{band.upper.max():.1f}",
                f"{band.lower.min():.1f}",
            ]
        )
    svg = multi_panel_lines(panels, x_labels=_week_labels())
    table = data_table(
        ["service", "median peak W", "median valley W", "p95 max W", "p5 min W"],
        table_rows,
    )
    return figure_page(
        "Figure 6 — diurnal power patterns",
        f"{dc.name}: per-service median with p5–p95 band, training weeks "
        "(web-like swings by day, db peaks at night, batch stays high)",
        svg,
        table,
    )


def build_figure9(dc) -> str:
    """Figure 9: children power traces before/after local re-placement."""
    figure = E.run_figure9(dc)
    # Recompute the child traces for plotting.
    from ..core.placement import PlacementConfig, WorkloadAwarePlacer
    from ..infra.aggregation import NodePowerView
    from ..infra.assignment import Assignment
    from ..infra.topology import PowerTopology

    node = dc.topology.node(figure.node_name)
    member_ids = set(dc.baseline.instances_under(node.name))
    records = [r for r in dc.records if r.instance_id in member_ids]
    subtree = PowerTopology(node)
    test = dc.test_traces().subset([r.instance_id for r in records])
    before_view = NodePowerView(
        subtree,
        Assignment(subtree, {i: dc.baseline.leaf_of(i) for i in member_ids}),
        test,
    )
    local = WorkloadAwarePlacer(PlacementConfig(seed=0)).place(records, subtree)
    after_view = NodePowerView(subtree, local.assignment, test)

    children = [child.name for child in node.children]
    short = [name.rsplit("/", 1)[-1] for name in children]
    before_series = [
        LineSeries(short[i], before_view.node_trace(c).values)
        for i, c in enumerate(children)
    ]
    after_series = [
        LineSeries(short[i], after_view.node_trace(c).values)
        for i, c in enumerate(children)
    ]
    svg = multi_panel_lines(
        [
            ("original children power traces", before_series),
            ("children optimized by SmoothOperator", after_series),
        ],
        x_labels=_week_labels(),
        legend_labels=short,
    )
    table = data_table(
        ["child", "peak before W", "peak after W"],
        [
            [short[i], f"{figure.child_peaks_before[c]:.0f}", f"{figure.child_peaks_after[c]:.0f}"]
            for i, c in enumerate(children)
        ],
    )
    return figure_page(
        "Figure 9 — smoothing the children of one power node",
        f"{figure.node_name} ({dc.name}, test week): parent trace unchanged, "
        f"children peaks −{figure.child_peak_reduction:.1%}",
        svg,
        table,
    )


def build_figure10(results: Dict[str, Dict[str, float]]) -> str:
    """Figure 10: per-level peak reduction bars for DC1–3."""
    levels = [Level.SUITE, Level.MSB, Level.SB, Level.RPP]
    names = list(results.keys())
    series = [
        (level.upper(), [results[name][level] * 100 for name in names])
        for level in levels
    ]
    svg = grouped_bar_chart(
        names,
        series,
        title="Peak power reduction at each level of the power infrastructure",
        value_suffix="%",
    )
    table = data_table(
        ["DC"] + [level.upper() for level in levels] + ["extra servers"],
        [
            [name]
            + [f"{results[name][level] * 100:.1f}%" for level in levels]
            + [f"{results[name]['extra_servers'] * 100:.1f}%"]
            for name in names
        ],
    )
    return figure_page(
        "Figure 10 — peak power reduction by level",
        "Sum-of-peaks reduction of the workload-aware placement vs the "
        "original placement, held-out week (paper: 2.3 / 7.1 / 13.1% at RPP)",
        svg,
        table,
    )


def build_figure12(study) -> str:
    """Figure 12: server conversion's impact over the test week."""
    pre = study.comparison.pre
    conv = study.comparison.scenarios["conversion"]
    labels = ["Pre-SmoothOperator", "SmoothOperator"]
    panels = [
        (
            "per-LC-server load",
            [
                LineSeries(labels[0], pre.per_server_load),
                LineSeries(labels[1], conv.per_server_load),
            ],
        ),
        (
            "batch throughput (server-steps)",
            [
                LineSeries(labels[0], pre.batch_throughput),
                LineSeries(labels[1], conv.batch_throughput),
            ],
        ),
        (
            "LC queries served",
            [
                LineSeries(labels[0], pre.lc_served),
                LineSeries(labels[1], conv.lc_served),
            ],
        ),
    ]
    svg = multi_panel_lines(panels, x_labels=_week_labels(), legend_labels=labels)
    table = data_table(
        ["metric", "pre", "conversion", "improvement"],
        [
            [
                "LC served (total)",
                f"{pre.lc_total():.0f}",
                f"{conv.lc_total():.0f}",
                f"{study.comparison.lc_improvement('conversion'):.1%}",
            ],
            [
                "batch work (total)",
                f"{pre.batch_total():.0f}",
                f"{conv.batch_total():.0f}",
                f"{study.comparison.batch_improvement('conversion'):.1%}",
            ],
            [
                "peak per-LC-server load",
                f"{pre.per_server_load.max():.3f}",
                f"{conv.per_server_load.max():.3f}",
                "—",
            ],
        ],
    )
    return figure_page(
        "Figure 12 — server conversion over the test week",
        f"{study.name}: L_conv={study.conversion_threshold:.3f}, "
        f"{study.extra_conversion} conversion servers "
        "(batch gains off-peak; LC capacity converts in at the daily peak)",
        svg,
        table,
    )


def build_figure14(results: Dict[str, Dict[str, float]]) -> str:
    """Figure 14: average and off-peak slack reduction bars."""
    names = list(results.keys())
    series = [
        ("Avg. power slack reduction", [results[n]["average"] * 100 for n in names]),
        ("Off-peak power slack reduction", [results[n]["off_peak"] * 100 for n in names]),
    ]
    svg = grouped_bar_chart(
        names,
        series,
        title="Power slack reduction from dynamic power profile reshaping",
        value_suffix="%",
        height=280,
    )
    table = data_table(
        ["DC", "average", "off-peak", "average vs pre", "off-peak vs pre"],
        [
            [
                name,
                f"{results[name]['average']:.1%}",
                f"{results[name]['off_peak']:.1%}",
                f"{results[name]['average_vs_pre']:.1%}",
                f"{results[name]['off_peak_vs_pre']:.1%}",
            ]
            for name in names
        ],
    )
    return figure_page(
        "Figure 14 — power slack reduction",
        "Dynamic reshaping (conversion + throttle/boost) vs deploying the "
        "same extra servers statically; paper: 44 / 41 / 18% average",
        svg,
        table,
    )


# ----------------------------------------------------------------------
def render_all(
    directory: PathLike, **dc_kwargs
) -> List[pathlib.Path]:
    """Regenerate the whole gallery into ``directory``; returns the paths."""
    directory = pathlib.Path(directory)
    dc1 = E.get_datacenter("DC1", **dc_kwargs)
    dc3 = E.get_datacenter("DC3", **dc_kwargs)
    all_dcs = [E.get_datacenter(n, **dc_kwargs) for n in E.DATACENTER_NAMES]
    paths = [
        write_figure(directory / "figure05_breakdown.html", build_figure5(all_dcs)),
        write_figure(directory / "figure06_diurnal.html", build_figure6(dc1)),
        write_figure(directory / "figure08_clusters.html", build_figure8(dc1)),
        write_figure(directory / "figure09_smoothing.html", build_figure9(dc3)),
        write_figure(
            directory / "figure10_peak_reduction.html",
            build_figure10(E.run_figure10(**dc_kwargs)),
        ),
        write_figure(
            directory / "figure11_statprof.html",
            build_figure11("DC3", E.run_figure11("DC3", **dc_kwargs)),
        ),
        write_figure(
            directory / "figure12_conversion.html",
            build_figure12(E.run_figure12("DC1", **dc_kwargs)),
        ),
        write_figure(
            directory / "figure14_slack.html",
            build_figure14(E.run_figure14(**dc_kwargs)),
        ),
    ]
    return paths
