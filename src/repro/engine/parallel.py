"""Parallel scenario execution: fan specs out to worker processes.

:func:`run_many` drives a list of :class:`~repro.engine.spec.ScenarioSpec`
/ :class:`~repro.engine.spec.ChaosSpec` through a process pool.  Specs are
plain picklable dataclasses and every run is seeded, so results are
bit-identical regardless of worker count — the determinism test in
``tests/engine/test_parity.py`` pins ``workers=4 == workers=1``.

Worker death does not sink the suite.  A killed worker breaks the whole
``ProcessPoolExecutor`` (every outstanding future raises
``BrokenProcessPool`` — the executor cannot tell which task was in the
dying process), so :func:`run_many` rebuilds the pool and retries the
unfinished specs with exponential backoff, up to ``max_attempts`` tries
per spec.  A spec that keeps failing comes back as a :class:`RunFailure`
in its slot of the result list — the rest of the suite's results survive.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from .spec import ChaosSpec, ScenarioSpec
from .state import RunArtifacts

#: Tries per spec before it is written off as a :class:`RunFailure`.
DEFAULT_MAX_ATTEMPTS = 3

#: Base delay between retry rounds (doubles per round).
DEFAULT_RETRY_BACKOFF_S = 0.25


@dataclass
class RunFailure:
    """One spec's structured failure after every retry was exhausted.

    Occupies the spec's slot in :func:`run_many`'s result list, so callers
    always get one entry per spec, in spec order — filter with
    ``isinstance(entry, RunFailure)`` (or check :attr:`RunArtifacts.result`)
    to separate the casualties from the survivors.
    """

    spec: Any
    error_type: str
    error: str
    attempts: int

    @property
    def result(self) -> None:
        """Mirror of :attr:`RunArtifacts.result`, always ``None``."""
        return None


def execute(spec: Any) -> RunArtifacts:
    """Run one spec (scenario, chaos-harness, or callable) and wrap it.

    Module-level so it pickles for :func:`run_many`'s worker processes.
    Zero-argument callables are the escape hatch for custom workloads
    (and for fault-injection tests): the callable runs as-is, and its
    return value is wrapped in :class:`RunArtifacts` unless it already is
    one.
    """
    if isinstance(spec, ScenarioSpec):
        from .core import Engine

        return Engine.from_spec(spec).run(spec)
    if isinstance(spec, ChaosSpec):
        # Lazy: the chaos harness imports the engine, not vice versa.
        from ..faults.harness import run_chaos_scenario
        from ..obs import events as obs_events

        outcome = run_chaos_scenario(spec.resolved_scenario(), **spec.run_kwargs())
        return RunArtifacts(
            spec=spec,
            result=outcome,
            events=obs_events.get_event_log(),
        )
    if callable(spec):
        outcome = spec()
        if isinstance(outcome, RunArtifacts):
            return outcome
        return RunArtifacts(spec=spec, result=outcome)
    raise TypeError(f"cannot execute spec of type {type(spec).__name__}")


def run_many(
    specs: Sequence[Any],
    *,
    workers: int = 1,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
) -> List[Any]:
    """Execute many specs, optionally across worker processes.

    Results come back in spec order, one entry per spec: a
    :class:`RunArtifacts` on success, a :class:`RunFailure` once a spec
    has failed ``max_attempts`` times.  ``workers <= 1`` runs serially in
    this process (cheapest for small batches and the only option on
    single-CPU hosts); otherwise a process pool executes the specs with a
    ``fork`` context where available, so workers inherit warm dataset
    caches instead of re-synthesizing them.

    A dead worker breaks the whole pool, so every spec still in flight
    counts one failed attempt and the survivors are resubmitted to a
    fresh pool after an exponential backoff — an innocent spec sharing a
    pool with a crashing one is retried, not condemned.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be at least 1")
    if retry_backoff_s < 0:
        raise ValueError("retry_backoff_s cannot be negative")
    specs = list(specs)
    results: List[Any] = [None] * len(specs)
    if workers <= 1 or len(specs) <= 1:
        for index, spec in enumerate(specs):
            results[index] = _run_serial(spec, max_attempts, retry_backoff_s)
        return results

    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - fork unavailable (non-POSIX)
        mp_context = multiprocessing.get_context()

    attempts = [0] * len(specs)
    pending = list(range(len(specs)))
    round_index = 0
    while pending:
        n_workers = min(workers, len(pending))
        pool = ProcessPoolExecutor(max_workers=n_workers, mp_context=mp_context)
        future_of = {}
        broken = False
        try:
            for index in pending:
                attempts[index] += 1
                future_of[pool.submit(execute, specs[index])] = index
            failed: List[int] = []
            outstanding = set(future_of)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    index = future_of[future]
                    try:
                        results[index] = future.result()
                    except BaseException as error:  # noqa: BLE001
                        # BrokenProcessPool lands here for *every* future
                        # that shared the dead pool; record the attempt
                        # and let the retry rounds sort survivors out.
                        failed.append(index)
                        results[index] = _failure(
                            specs[index], error, attempts[index]
                        )
                        if _pool_is_broken(error):
                            broken = True
                if broken:
                    # The executor is unusable; everything not yet
                    # resolved fails this round and is retried.
                    for future in outstanding:
                        index = future_of[future]
                        failed.append(index)
                        results[index] = _failure(
                            specs[index],
                            RuntimeError("worker pool died mid-run"),
                            attempts[index],
                        )
                    break
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        pending = [
            index
            for index in sorted(set(failed))
            if attempts[index] < max_attempts
        ]
        if pending:
            time.sleep(retry_backoff_s * (2**round_index))
            round_index += 1
    return results


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _run_serial(spec: Any, max_attempts: int, retry_backoff_s: float) -> Any:
    """One spec in-process, with the same bounded retry + backoff."""
    for attempt in range(1, max_attempts + 1):
        try:
            return execute(spec)
        except Exception as error:  # noqa: BLE001
            failure = _failure(spec, error, attempt)
            if attempt < max_attempts:
                time.sleep(retry_backoff_s * (2 ** (attempt - 1)))
    return failure


def _failure(spec: Any, error: BaseException, attempts: int) -> RunFailure:
    return RunFailure(
        spec=spec,
        error_type=type(error).__name__,
        error=str(error) or repr(error),
        attempts=attempts,
    )


def _pool_is_broken(error: BaseException) -> bool:
    """Did this exception take the whole executor down with it?"""
    from concurrent.futures.process import BrokenProcessPool

    return isinstance(error, BrokenProcessPool)
