"""Unit tests for the guarded LC load balancer."""

import numpy as np
import pytest

from repro.sim import dispatch


class TestDispatch:
    def test_all_served_under_capacity(self):
        outcome = dispatch(np.array([4.0]), np.array([10.0]), guard_load=0.8)
        assert outcome.served[0] == pytest.approx(4.0)
        assert outcome.dropped[0] == pytest.approx(0.0)
        assert outcome.per_server_load[0] == pytest.approx(0.4)

    def test_drops_beyond_guard(self):
        outcome = dispatch(np.array([9.0]), np.array([10.0]), guard_load=0.8)
        assert outcome.served[0] == pytest.approx(8.0)
        assert outcome.dropped[0] == pytest.approx(1.0)
        assert outcome.per_server_load[0] == pytest.approx(0.8)

    def test_zero_servers(self):
        outcome = dispatch(np.array([5.0]), np.array([0.0]), guard_load=0.9)
        assert outcome.served[0] == 0.0
        assert outcome.dropped[0] == 5.0
        assert outcome.per_server_load[0] == 0.0

    def test_time_varying_servers(self):
        demand = np.array([4.0, 4.0])
        servers = np.array([10.0, 4.0])
        outcome = dispatch(demand, servers, guard_load=0.5)
        assert outcome.served[0] == pytest.approx(4.0)
        assert outcome.served[1] == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            dispatch(np.array([1.0]), np.array([1.0]), guard_load=0.0)
        with pytest.raises(ValueError):
            dispatch(np.array([-1.0]), np.array([1.0]), guard_load=0.5)
        with pytest.raises(ValueError):
            dispatch(np.array([1.0]), np.array([-1.0]), guard_load=0.5)

    def test_totals_and_violations(self):
        demand = np.array([1.0, 5.0, 1.0])
        servers = np.full(3, 4.0)
        outcome = dispatch(demand, servers, guard_load=1.0)
        assert outcome.total_served() == pytest.approx(6.0)
        assert outcome.total_dropped() == pytest.approx(1.0)
        assert outcome.violation_fraction() == pytest.approx(1 / 3)

    def test_conservation(self, rng):
        demand = rng.random(50) * 10
        servers = np.full(50, 8.0)
        outcome = dispatch(demand, servers, guard_load=0.7)
        assert np.allclose(outcome.served + outcome.dropped, demand)
        assert np.all(outcome.per_server_load <= 0.7 + 1e-12)
