"""Synthetic power-trace generation.

The paper measures three weeks of per-minute power telemetry for every server
in three production Facebook datacenters.  We cannot obtain those traces, so
this module synthesises the closest structural equivalent (see DESIGN.md,
"Substitutions"): per-instance traces composed of

* a service-level diurnal/weekly activity shape (:class:`ServiceProfile`),
* per-instance heterogeneity — phase offsets, amplitude/baseline scaling —
  drawn once per instance and stable across weeks (this is the signal the
  placement framework exploits),
* week-over-week variation and AR(1)-correlated short-term noise (this is
  the signal Eq. 4's multi-week averaging is designed to suppress).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from .grid import TimeGrid
from .instance import InstanceRecord, ServiceInstance
from .profiles import ServiceProfile
from .series import PowerTrace
from .traceset import TraceSet


@dataclass(frozen=True)
class InstancePersonality:
    """Stable per-instance deviations from the service shape.

    Drawn once per instance; identical across weeks.  This is precisely the
    "instance-level heterogeneity ... from imbalanced accessing pattern or
    skewed popularity" of Sec. 3.3.
    """

    phase_offset_hours: float
    amplitude_scale: float
    baseline_scale: float

    def __post_init__(self) -> None:
        if self.amplitude_scale < 0 or self.baseline_scale < 0:
            raise ValueError("personality scales cannot be negative")


def draw_personality(
    profile: ServiceProfile, rng: np.random.Generator
) -> InstancePersonality:
    """Sample one instance's personality from the profile's jitter model."""
    phase = float(rng.normal(0.0, profile.phase_jitter_hours))
    amplitude = float(
        np.clip(rng.normal(1.0, profile.amplitude_jitter), 0.2, 3.0)
    )
    baseline = float(
        np.clip(rng.normal(1.0, profile.baseline_jitter), 0.2, 3.0)
    )
    return InstancePersonality(phase, amplitude, baseline)


class TraceSynthesizer:
    """Generates multi-week instance power traces for service profiles.

    Parameters
    ----------
    weeks:
        Number of whole weeks to synthesise (the paper collects 3: two for
        training, one held out — Sec. 5.1).
    step_minutes:
        Sampling step.  The paper logs per minute; the default of 10 minutes
        keeps fleet-scale experiments fast while preserving hourly structure.
    seed:
        Seed for the top-level RNG.  All randomness flows from here, so a
        given (seed, fleet spec) pair is fully reproducible.
    """

    def __init__(
        self,
        *,
        weeks: int = 3,
        step_minutes: int = 10,
        seed: int = 0,
    ) -> None:
        if weeks <= 0:
            raise ValueError("weeks must be positive")
        self.weeks = weeks
        self.grid = TimeGrid.for_weeks(weeks, step_minutes=step_minutes)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def instance_trace(
        self,
        profile: ServiceProfile,
        personality: Optional[InstancePersonality] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> PowerTrace:
        """One instance's raw multi-week power trace."""
        rng = rng if rng is not None else self._rng
        if personality is None:
            personality = draw_personality(profile, rng)

        hours = self.grid.hours_of_day() - personality.phase_offset_hours
        activity = profile.activity(np.mod(hours, 24.0))

        # Weekly structure: weekends dampened for user-facing services.
        day_of_week = self.grid.days_of_week()
        weekend = (day_of_week >= 5).astype(np.float64)
        weekly = 1.0 - weekend * (1.0 - profile.weekend_factor)

        # Week-over-week drift: each week gets a small load multiplier.
        per_week = self.grid.samples_per_week
        week_scale = rng.normal(1.0, 0.03, size=self.weeks).clip(0.8, 1.2)
        week_factor = np.repeat(week_scale, per_week)[: self.grid.n_samples]

        # AR(1)-correlated multiplicative noise (sensor + load jitter).
        noise = _ar1_noise(self.grid.n_samples, profile.noise_std, rng)

        utilisation = activity * weekly * week_factor * (1.0 + noise)
        utilisation = np.clip(utilisation, 0.0, 1.5)

        idle = profile.idle_watts * personality.baseline_scale
        swing = profile.swing_watts * personality.amplitude_scale
        values = idle + swing * utilisation
        return PowerTrace(self.grid, np.maximum(values, 0.0))

    def service_instances(
        self,
        profile: ServiceProfile,
        count: int,
        *,
        id_prefix: Optional[str] = None,
        test_weeks: int = 1,
    ) -> List[InstanceRecord]:
        """``count`` instance records for one service.

        Each record holds the Eq.-4 averaged training trace (first
        ``weeks - test_weeks`` weeks) and the held-out test week.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        prefix = id_prefix if id_prefix is not None else profile.name
        with obs.span("synthesize.service", service=profile.name, count=count):
            obs.count("synthesize.instances", count)
            records: List[InstanceRecord] = []
            for index in range(count):
                instance = ServiceInstance(
                    instance_id=f"{prefix}-{index:05d}",
                    service=profile.name,
                    kind=profile.kind,
                )
                raw = self.instance_trace(profile)
                records.append(
                    InstanceRecord.from_weeks(
                        instance, raw.split_weeks(), test_weeks=test_weeks
                    )
                )
            return records

    def fleet(
        self,
        composition: Sequence[Tuple[ServiceProfile, int]],
        *,
        test_weeks: int = 1,
    ) -> List[InstanceRecord]:
        """Instance records for a whole fleet given (profile, count) pairs."""
        with obs.span("synthesize", services=len(composition)):
            records: List[InstanceRecord] = []
            for profile, count in composition:
                records.extend(
                    self.service_instances(profile, count, test_weeks=test_weeks)
                )
            return records


def _ar1_noise(
    n_samples: int, std: float, rng: np.random.Generator, rho: float = 0.9
) -> np.ndarray:
    """Zero-mean temporally-correlated noise with marginal std ``std``.

    Implemented as white noise convolved with a truncated exponential
    kernel (the AR(1) impulse response), which vectorises cleanly.
    """
    if std == 0:
        return np.zeros(n_samples)
    # Kernel length where rho^k becomes negligible.
    length = min(n_samples, max(8, int(np.ceil(np.log(1e-3) / np.log(rho)))))
    kernel = rho ** np.arange(length)
    kernel /= np.sqrt((kernel * kernel).sum())  # unit marginal variance
    white = rng.normal(0.0, std, size=n_samples + length - 1)
    return np.convolve(white, kernel, mode="valid")


def training_trace_set(records: Sequence[InstanceRecord]) -> TraceSet:
    """The fleet's averaged training I-traces as one :class:`TraceSet`."""
    return TraceSet.from_traces(
        {record.instance_id: record.training_trace for record in records}
    )


def test_trace_set(records: Sequence[InstanceRecord]) -> TraceSet:
    """The fleet's held-out test-week traces as one :class:`TraceSet`."""
    missing = [r.instance_id for r in records if r.test_trace is None]
    if missing:
        raise ValueError(f"records without test traces: {missing[:5]}")
    return TraceSet.from_traces(
        {record.instance_id: record.test_trace for record in records}
    )
