"""Unit tests for the workload-aware hierarchical placer (Sec. 3.5)."""

import pytest

from repro.baselines import oblivious_placement
from repro.core import PlacementConfig, WorkloadAwarePlacer
from repro.infra import (
    AssignmentError,
    Level,
    NodePowerView,
    build_topology,
    two_level_spec,
)
from repro.traces import training_trace_set


@pytest.fixture
def placer():
    return WorkloadAwarePlacer(PlacementConfig(seed=0, kmeans_n_init=2))


class TestBasics:
    def test_places_every_instance(self, placer, tiny_records, tiny_topology):
        result = placer.place(tiny_records, tiny_topology)
        placed = set(result.assignment.instance_ids())
        assert placed == {r.instance_id for r in tiny_records}

    def test_respects_leaf_capacity(self, placer, tiny_records, tiny_topology):
        result = placer.place(tiny_records, tiny_topology)
        for leaf in tiny_topology.leaves():
            members = result.assignment.instances_on_leaf(leaf.name)
            assert len(members) <= leaf.capacity

    def test_balanced_occupancy(self, placer, tiny_records, tiny_topology):
        result = placer.place(tiny_records, tiny_topology)
        occupancy = list(result.assignment.occupancy().values())
        assert max(occupancy) - min(occupancy) <= 2

    def test_rejects_empty(self, placer, tiny_topology):
        with pytest.raises(ValueError):
            placer.place([], tiny_topology)

    def test_rejects_overflow(self, placer, synthesizer):
        from repro.traces import web_profile

        records = synthesizer.service_instances(web_profile(), 40)
        small = build_topology(two_level_spec("s", leaves=2, leaf_capacity=10))
        with pytest.raises(AssignmentError):
            placer.place(records, small)

    def test_determinism(self, placer, tiny_records, tiny_topology):
        a = placer.place(tiny_records, tiny_topology).assignment.as_mapping()
        b = placer.place(tiny_records, tiny_topology).assignment.as_mapping()
        assert a == b

    def test_basis_services_recorded(self, placer, tiny_records, tiny_topology):
        result = placer.place(tiny_records, tiny_topology)
        assert set(result.basis_services) <= {"web", "cache", "db", "hadoop"}
        assert len(result.basis_services) >= 1

    def test_cluster_labels_recorded(self, placer, tiny_records, tiny_topology):
        result = placer.place(tiny_records, tiny_topology)
        # Diagnostics exist for internal nodes with >1 child.
        assert any(result.cluster_labels.values())


class TestSpreading:
    def test_spreads_services_across_leaves(self, placer, tiny_records, tiny_topology):
        """No leaf should be a service monoculture after placement."""
        result = placer.place(tiny_records, tiny_topology)
        by_id = {r.instance_id: r.service for r in tiny_records}
        monocultures = 0
        for leaf in tiny_topology.leaves():
            members = result.assignment.instances_on_leaf(leaf.name)
            services = {by_id[m] for m in members}
            if len(members) >= 4 and len(services) == 1:
                monocultures += 1
        assert monocultures == 0

    def test_beats_oblivious_on_sum_of_peaks(self, placer, tiny_records, tiny_topology):
        """The core claim: lower leaf-level sum of peaks than grouping."""
        traces = training_trace_set(tiny_records)
        optimized = placer.place(tiny_records, tiny_topology).assignment
        oblivious = oblivious_placement(tiny_records, tiny_topology)
        opt_view = NodePowerView(tiny_topology, optimized, traces)
        obl_view = NodePowerView(tiny_topology, oblivious, traces)
        assert opt_view.sum_of_peaks(Level.RACK) < obl_view.sum_of_peaks(Level.RACK)

    def test_root_peak_unchanged(self, placer, tiny_records, tiny_topology):
        """Placement cannot change the datacenter-level aggregate."""
        traces = training_trace_set(tiny_records)
        optimized = placer.place(tiny_records, tiny_topology).assignment
        oblivious = oblivious_placement(tiny_records, tiny_topology)
        opt_root = NodePowerView(tiny_topology, optimized, traces).node_peak(
            tiny_topology.root.name
        )
        obl_root = NodePowerView(tiny_topology, oblivious, traces).node_peak(
            tiny_topology.root.name
        )
        assert opt_root == pytest.approx(obl_root)


class TestConfig:
    def test_invalid_top_m(self):
        with pytest.raises(ValueError):
            PlacementConfig(top_m_services=0)

    def test_invalid_clusters_per_child(self):
        with pytest.raises(ValueError):
            PlacementConfig(clusters_per_child=0)

    def test_global_basis_mode(self, tiny_records, tiny_topology):
        placer = WorkloadAwarePlacer(
            PlacementConfig(seed=0, rebuild_basis_per_node=False, kmeans_n_init=2)
        )
        result = placer.place(tiny_records, tiny_topology)
        assert len(result.assignment) == len(tiny_records)

    def test_single_child_chain(self, tiny_records):
        """A degenerate tree with one child per level still places."""
        from repro.infra import LevelSpec, TopologySpec

        topo = build_topology(
            TopologySpec(
                name="chain",
                levels=(
                    LevelSpec(Level.SUITE, 1),
                    LevelSpec(Level.RPP, 1),
                    LevelSpec(Level.RACK, 4),
                ),
                leaf_capacity=8,
            )
        )
        placer = WorkloadAwarePlacer(PlacementConfig(seed=0, kmeans_n_init=2))
        result = placer.place(tiny_records, topo)
        assert len(result.assignment) == len(tiny_records)

    def test_more_instances_than_clusters(self, synthesizer):
        """n < q children: some children legitimately receive nothing."""
        from repro.traces import web_profile

        records = synthesizer.service_instances(web_profile(), 3)
        topo = build_topology(two_level_spec("wide", leaves=8, leaf_capacity=4))
        placer = WorkloadAwarePlacer(PlacementConfig(seed=0, kmeans_n_init=2))
        result = placer.place(records, topo)
        assert len(result.assignment) == 3
