"""Unit tests for per-node power aggregation and fragmentation metrics."""

import numpy as np
import pytest

from repro.infra import (
    Assignment,
    Level,
    NodePowerView,
    build_topology,
    peak_reduction_by_level,
    two_level_spec,
)
from repro.traces import TimeGrid, TraceSet


@pytest.fixture
def grid():
    return TimeGrid(0, 60, 24)


@pytest.fixture
def topo():
    return build_topology(two_level_spec("dc", leaves=2, leaf_capacity=4))


@pytest.fixture
def traces(grid):
    """Two synchronous ramps and two anti-phase ramps."""
    up = np.linspace(0, 10, 24)
    down = np.linspace(10, 0, 24)
    return TraceSet(
        grid,
        ["up1", "up2", "down1", "down2"],
        np.vstack([up, up, down, down]),
    )


def view_for(topo, traces, mapping):
    return NodePowerView(topo, Assignment(topo, mapping), traces)


class TestNodeTraces:
    def test_leaf_aggregate(self, topo, traces):
        view = view_for(
            topo, traces,
            {"up1": "dc/rpp0", "up2": "dc/rpp0", "down1": "dc/rpp1", "down2": "dc/rpp1"},
        )
        assert view.node_peak("dc/rpp0") == pytest.approx(20.0)
        assert view.node_peak("dc/rpp1") == pytest.approx(20.0)

    def test_root_is_sum_of_children(self, topo, traces):
        view = view_for(
            topo, traces,
            {"up1": "dc/rpp0", "up2": "dc/rpp0", "down1": "dc/rpp1", "down2": "dc/rpp1"},
        )
        root = view.node_trace("dc")
        children = view.node_trace("dc/rpp0") + view.node_trace("dc/rpp1")
        assert root == children

    def test_empty_leaf_is_zero(self, topo, traces):
        view = view_for(
            topo, traces,
            {"up1": "dc/rpp0", "up2": "dc/rpp0", "down1": "dc/rpp0", "down2": "dc/rpp0"},
        )
        assert view.node_peak("dc/rpp1") == 0.0

    def test_node_mean(self, topo, traces):
        view = view_for(topo, traces, {"up1": "dc/rpp0"})
        assert view.node_mean("dc/rpp0") == pytest.approx(5.0)

    def test_missing_traces_rejected(self, topo, traces):
        with pytest.raises(ValueError):
            NodePowerView(
                topo,
                Assignment(topo, {"ghost": "dc/rpp0"}),
                traces,
            )


class TestFragmentationMetrics:
    def test_sum_of_peaks_poor_vs_good(self, topo, traces):
        """Grouping synchronous instances doubles leaf peaks (Figure 3)."""
        poor = view_for(
            topo, traces,
            {"up1": "dc/rpp0", "up2": "dc/rpp0", "down1": "dc/rpp1", "down2": "dc/rpp1"},
        )
        good = view_for(
            topo, traces,
            {"up1": "dc/rpp0", "down1": "dc/rpp0", "up2": "dc/rpp1", "down2": "dc/rpp1"},
        )
        assert poor.sum_of_peaks(Level.RPP) == pytest.approx(40.0)
        assert good.sum_of_peaks(Level.RPP) == pytest.approx(20.0)
        # Root peak unaffected by leaf arrangement.
        assert poor.node_peak("dc") == pytest.approx(good.node_peak("dc"))

    def test_sum_of_peaks_by_level(self, topo, traces):
        view = view_for(
            topo, traces,
            {"up1": "dc/rpp0", "up2": "dc/rpp1", "down1": "dc/rpp0", "down2": "dc/rpp1"},
        )
        by_level = view.sum_of_peaks_by_level()
        assert set(by_level) == {Level.DATACENTER, Level.RPP}

    def test_peak_reduction_by_level(self, topo, traces):
        poor = view_for(
            topo, traces,
            {"up1": "dc/rpp0", "up2": "dc/rpp0", "down1": "dc/rpp1", "down2": "dc/rpp1"},
        )
        good = view_for(
            topo, traces,
            {"up1": "dc/rpp0", "down1": "dc/rpp0", "up2": "dc/rpp1", "down2": "dc/rpp1"},
        )
        reductions = peak_reduction_by_level(poor, good)
        assert reductions[Level.RPP] == pytest.approx(0.5)
        assert reductions[Level.DATACENTER] == pytest.approx(0.0)

    def test_node_percentile(self, topo, traces):
        view = view_for(topo, traces, {"up1": "dc/rpp0"})
        assert view.node_percentile("dc/rpp0", 100) == pytest.approx(10.0)
        assert view.node_percentile("dc/rpp0", 50) == pytest.approx(5.0)


class TestSlackMetrics:
    def test_requires_budget(self, topo, traces):
        view = view_for(topo, traces, {"up1": "dc/rpp0"})
        with pytest.raises(ValueError):
            view.power_slack("dc/rpp0")

    def test_slack_and_utilization(self, topo, traces):
        view = view_for(topo, traces, {"up1": "dc/rpp0"})
        topo.node("dc/rpp0").budget_watts = 20.0
        slack = view.power_slack("dc/rpp0")
        assert slack.min() == pytest.approx(10.0)
        assert view.utilization("dc/rpp0") == pytest.approx(0.25)
        assert view.energy_slack("dc/rpp0") > 0
