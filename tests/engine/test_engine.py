"""Unit tests for the engine's building blocks and the legacy shims."""

import numpy as np
import pytest

from conftest import make_demand, make_fleet, make_runtime_parts
from repro.engine import (
    MODES,
    Engine,
    FleetState,
    RunArtifacts,
    ScenarioSpec,
    build_pipeline,
    execute,
    run_many,
)


# ----------------------------------------------------------------------
# FleetState
# ----------------------------------------------------------------------
def test_fleet_state_initial_is_whole_fleet_at_nominal_freq():
    fleet = make_fleet()
    demand = make_demand()
    state = FleetState.initial(fleet, demand)
    n = demand.grid.n_samples
    assert state.n_samples == n
    assert np.array_equal(state.n_lc_active, np.full(n, float(fleet.n_lc)))
    assert np.array_equal(state.n_batch_active, np.full(n, float(fleet.n_batch)))
    assert np.array_equal(state.batch_freq, np.ones(n))
    assert state.parked is None
    assert state.lost_lc is None
    assert state.lost_batch is None


# ----------------------------------------------------------------------
# ScenarioSpec validation and pipelines
# ----------------------------------------------------------------------
def test_spec_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown mode"):
        ScenarioSpec(mode="nonsense", fleet=make_fleet(), demand=make_demand())


def test_spec_rejects_negative_extra_servers():
    with pytest.raises(ValueError, match="cannot be negative"):
        ScenarioSpec(
            mode="lc_only",
            fleet=make_fleet(),
            demand=make_demand(),
            extra_servers=-1,
        )


@pytest.mark.parametrize("mode", MODES)
def test_build_pipeline_knows_every_mode(mode):
    spec = ScenarioSpec(mode=mode, fleet=make_fleet(), demand=make_demand())
    policies, actuators = build_pipeline(spec)
    assert isinstance(policies, tuple)
    assert isinstance(actuators, tuple)
    if mode == "pre":
        assert policies == () and actuators == ()
    else:
        assert policies
    if mode.endswith("_chaos"):
        assert actuators  # emergency capping guards the chaos modes


def test_explicit_pipeline_overrides_the_mode_default():
    spec = ScenarioSpec(
        mode="conversion",
        fleet=make_fleet(),
        demand=make_demand(),
        policies=(),
    )
    assert build_pipeline(spec) == ((), ())


def test_from_spec_requires_a_conversion_policy():
    spec = ScenarioSpec(mode="pre", fleet=make_fleet(), demand=make_demand())
    with pytest.raises(ValueError, match="conversion policy"):
        Engine.from_spec(spec)


def test_throttle_boost_rejects_negative_funded_count():
    fleet, conversion, throttle, dvfs = make_runtime_parts()
    engine = Engine(fleet, conversion, throttle=throttle, dvfs=dvfs)
    spec = ScenarioSpec(
        mode="throttle_boost",
        fleet=fleet,
        demand=make_demand(),
        conversion=conversion,
        extra_servers=3,
        extra_throttle_funded=-1,
    )
    with pytest.raises(ValueError, match="cannot be negative"):
        engine.run(spec)


def test_custom_name_overrides_the_mode_label():
    fleet, conversion, throttle, dvfs = make_runtime_parts()
    engine = Engine(fleet, conversion, throttle=throttle, dvfs=dvfs)
    spec = ScenarioSpec(
        mode="pre",
        fleet=fleet,
        demand=make_demand(),
        conversion=conversion,
        name="baseline",
    )
    assert engine.run(spec).result.name == "baseline"


# ----------------------------------------------------------------------
# RunArtifacts and execute/run_many plumbing
# ----------------------------------------------------------------------
def test_artifacts_scenario_unwraps_plain_results():
    fleet, conversion, throttle, dvfs = make_runtime_parts()
    engine = Engine(fleet, conversion, throttle=throttle, dvfs=dvfs)
    spec = ScenarioSpec(
        mode="pre", fleet=fleet, demand=make_demand(), conversion=conversion
    )
    artifacts = engine.run(spec)
    assert artifacts.scenario is artifacts.result
    assert artifacts.spec is spec


def test_artifacts_scenario_is_none_for_foreign_results():
    assert RunArtifacts(spec=None, result={"not": "a result"}).scenario is None


def test_execute_rejects_unknown_spec_types():
    with pytest.raises(TypeError, match="cannot execute"):
        execute(object())


def test_run_many_serial_preserves_spec_order():
    fleet, conversion, throttle, dvfs = make_runtime_parts()
    demand = make_demand()
    specs = [
        ScenarioSpec(
            mode="pre", fleet=fleet, demand=demand, conversion=conversion
        ),
        ScenarioSpec(
            mode="lc_only",
            fleet=fleet,
            demand=demand,
            conversion=conversion,
            extra_servers=5,
        ),
    ]
    results = run_many(specs, workers=1)
    assert [a.result.name for a in results] == ["pre", "lc_only"]


# ----------------------------------------------------------------------
# the legacy shims
# ----------------------------------------------------------------------
def test_chaos_runtime_no_longer_subclasses_reshaping_runtime():
    from repro.faults.runtime import ChaosReshapingRuntime
    from repro.reshaping.runtime import ReshapingRuntime

    assert not issubclass(ChaosReshapingRuntime, ReshapingRuntime)


def test_shims_reexport_the_engine_dataclasses():
    from repro.engine.capping import CappingSimulator as engine_sim
    from repro.engine.state import FleetDescription as engine_fleet
    from repro.infra.capping import CappingSimulator as infra_sim
    from repro.reshaping.runtime import FleetDescription as shim_fleet

    assert shim_fleet is engine_fleet
    assert infra_sim is engine_sim


def test_shim_runtime_exposes_its_models():
    fleet, conversion, throttle, dvfs = make_runtime_parts()
    from repro.reshaping.runtime import ReshapingRuntime

    runtime = ReshapingRuntime(fleet, conversion, throttle=throttle, dvfs=dvfs)
    assert runtime.fleet is fleet
    assert runtime.conversion is conversion
    assert runtime.throttle is throttle
    assert runtime.dvfs is dvfs
