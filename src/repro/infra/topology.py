"""Multi-level power delivery infrastructure (Sec. 2.1, Figure 2).

Facebook datacenters feed power through a four-level tree: the datacenter
substation supplies suites, each suite has main switching boards (MSBs)
feeding switching boards (SBs), which feed reactive power panels (RPPs),
which feed racks of servers.  The power budget of each node is approximately
the sum of its children's budgets, and a node's breaker trips if its
aggregate draw exceeds its budget.

This module models that tree.  Nodes are identified by unique names; servers
(service instances) attach only to *leaf* nodes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple


class Level:
    """Canonical levels of the power tree, root to leaf."""

    DATACENTER = "datacenter"
    SUITE = "suite"
    MSB = "msb"
    SB = "sb"
    RPP = "rpp"
    RACK = "rack"

    #: Root-to-leaf ordering used by the default topology.
    DEFAULT_ORDER: Tuple[str, ...] = (DATACENTER, SUITE, MSB, SB, RPP, RACK)


class TopologyError(ValueError):
    """Raised for structurally invalid power trees or lookups."""


class PowerNode:
    """One power delivery device in the tree.

    A node knows its name, level, parent, children, and (optionally) a power
    budget in watts.  Budgets can also be assigned later from a provisioning
    policy (see :mod:`repro.infra.budget`).
    """

    __slots__ = ("name", "level", "parent", "children", "budget_watts", "capacity")

    def __init__(
        self,
        name: str,
        level: str,
        *,
        budget_watts: Optional[float] = None,
        capacity: Optional[int] = None,
    ) -> None:
        if not name:
            raise TopologyError("node name cannot be empty")
        if budget_watts is not None and budget_watts < 0:
            raise TopologyError("budget cannot be negative")
        if capacity is not None and capacity <= 0:
            raise TopologyError("capacity must be positive when given")
        self.name = name
        self.level = level
        self.parent: Optional["PowerNode"] = None
        self.children: List["PowerNode"] = []
        self.budget_watts = budget_watts
        #: Max number of service instances attachable beneath this node
        #: (meaningful for leaves; None = unbounded).
        self.capacity = capacity

    def add_child(self, child: "PowerNode") -> "PowerNode":
        if child.parent is not None:
            raise TopologyError(f"node {child.name} already has a parent")
        child.parent = self
        self.children.append(child)
        return child

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def iter_subtree(self) -> Iterator["PowerNode"]:
        """Pre-order traversal of this node and its descendants."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def leaves(self) -> List["PowerNode"]:
        return [node for node in self.iter_subtree() if node.is_leaf]

    def path_from_root(self) -> List["PowerNode"]:
        path: List[PowerNode] = []
        node: Optional[PowerNode] = self
        while node is not None:
            path.append(node)
            node = node.parent
        return list(reversed(path))

    def __repr__(self) -> str:
        return f"PowerNode({self.name!r}, level={self.level!r}, children={len(self.children)})"


class PowerTopology:
    """A whole power tree with name-indexed lookup.

    The tree is validated on construction: names must be unique and every
    non-root node must be reachable from the root.
    """

    def __init__(self, root: PowerNode) -> None:
        self.root = root
        self._by_name: Dict[str, PowerNode] = {}
        for node in root.iter_subtree():
            if node.name in self._by_name:
                raise TopologyError(f"duplicate node name: {node.name}")
            self._by_name[node.name] = node

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def node(self, name: str) -> PowerNode:
        try:
            return self._by_name[name]
        except KeyError:
            raise TopologyError(f"unknown node: {name}") from None

    def nodes(self) -> List[PowerNode]:
        return list(self._by_name.values())

    def levels(self) -> List[str]:
        """Distinct levels present, in root-to-leaf encounter order."""
        seen: List[str] = []
        for node in self.root.iter_subtree():
            if node.level not in seen:
                seen.append(node.level)
        return seen

    def nodes_at_level(self, level: str) -> List[PowerNode]:
        found = [node for node in self.root.iter_subtree() if node.level == level]
        if not found:
            raise TopologyError(f"no nodes at level {level!r}")
        return found

    def leaves(self) -> List[PowerNode]:
        return self.root.leaves()

    def leaf_names(self) -> List[str]:
        return [leaf.name for leaf in self.leaves()]

    def parent_of(self, name: str) -> Optional[PowerNode]:
        return self.node(name).parent

    def total_leaf_capacity(self) -> Optional[int]:
        """Sum of leaf capacities; None if any leaf is unbounded."""
        total = 0
        for leaf in self.leaves():
            if leaf.capacity is None:
                return None
            total += leaf.capacity
        return total

    def describe(self) -> str:
        """Human-readable per-level summary ("4 suites, 8 MSBs, ...")."""
        parts = []
        for level in self.levels():
            count = len(self.nodes_at_level(level))
            parts.append(f"{count} {level}{'s' if count != 1 else ''}")
        return ", ".join(parts)
