"""Ablation: which ingredients of the placement framework matter?

Not a paper figure — an ablation of the design choices DESIGN.md calls out:

* baseline placements (oblivious / round-robin / random) vs SmoothOperator;
* balanced k-means vs plain k-means;
* basis size |B| (top-m S-traces);
* clusters-per-child h/q;
* the Sec. 3.6 remapping pass on top of the placer.

Reported as RPP-level sum-of-peaks on the DC3 test week (lower is better).
"""

import pytest

from repro.analysis import experiments as E
from repro.analysis.report import format_percent, format_table
from repro.baselines import random_placement, round_robin_placement
from repro.core import (
    GreedyPeakPlacer,
    PlacementConfig,
    RemapConfig,
    RemappingEngine,
    WorkloadAwarePlacer,
    scoped_placement,
)
from repro.infra import Level, NodePowerView
from repro.traces import training_trace_set

SCALE = dict(n_instances=1440, step_minutes=10)


def _rpp_peaks(dc, assignment, traces):
    return NodePowerView(dc.topology, assignment, traces).sum_of_peaks(Level.RPP)


def _run():
    dc = E.get_datacenter("DC3", **SCALE)
    test = dc.test_traces()
    training = training_trace_set(dc.records)
    results = {}

    results["oblivious (original)"] = _rpp_peaks(dc, dc.baseline, test)
    results["round-robin"] = _rpp_peaks(
        dc, round_robin_placement(dc.records, dc.topology), test
    )
    results["random"] = _rpp_peaks(
        dc, random_placement(dc.records, dc.topology, seed=9), test
    )

    default = WorkloadAwarePlacer(PlacementConfig(seed=0)).place(dc.records, dc.topology)
    results["SmoothOperator (default)"] = _rpp_peaks(dc, default.assignment, test)

    small_basis = WorkloadAwarePlacer(
        PlacementConfig(seed=0, top_m_services=3)
    ).place(dc.records, dc.topology)
    results["SmoothOperator (|B|=3)"] = _rpp_peaks(dc, small_basis.assignment, test)

    coarse = WorkloadAwarePlacer(
        PlacementConfig(seed=0, clusters_per_child=1)
    ).place(dc.records, dc.topology)
    results["SmoothOperator (h=q)"] = _rpp_peaks(dc, coarse.assignment, test)

    fine = WorkloadAwarePlacer(
        PlacementConfig(seed=0, clusters_per_child=4)
    ).place(dc.records, dc.topology)
    results["SmoothOperator (h=4q)"] = _rpp_peaks(dc, fine.assignment, test)

    global_basis = WorkloadAwarePlacer(
        PlacementConfig(seed=0, rebuild_basis_per_node=False)
    ).place(dc.records, dc.topology)
    results["SmoothOperator (global basis)"] = _rpp_peaks(dc, global_basis.assignment, test)

    greedy = GreedyPeakPlacer().place(dc.records, dc.topology)
    results["greedy marginal-peak"] = _rpp_peaks(dc, greedy, test)

    scoped = scoped_placement(dc.records, dc.baseline, Level.SUITE,
                              PlacementConfig(seed=0))
    results["SmoothOperator (per-suite scope)"] = _rpp_peaks(dc, scoped, test)

    remap = RemappingEngine(
        RemapConfig(level=Level.RPP, max_swaps=40, candidate_nodes=6)
    ).run(default.assignment, training)
    results["SmoothOperator + remapping"] = _rpp_peaks(dc, remap.assignment, test)

    return results


@pytest.mark.benchmark(group="ablation")
def test_ablation_placement(benchmark, emit_report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    baseline = results["oblivious (original)"]
    rows = [
        [name, f"{value:.0f}", format_percent(1.0 - value / baseline)]
        for name, value in results.items()
    ]
    emit_report(
        "ablation_placement",
        format_table(
            ["placement", "RPP sum-of-peaks (W)", "reduction vs oblivious"],
            rows,
            title="Ablation — placement ingredients (DC3, test week)",
        ),
    )

    # The workload-aware placer must beat every trace-blind baseline.
    smoop = results["SmoothOperator (default)"]
    assert smoop < results["oblivious (original)"]
    assert smoop < results["round-robin"]
    assert smoop < results["random"]
    # Remapping on top never hurts.
    assert results["SmoothOperator + remapping"] <= smoop * 1.002
