"""Straggler mitigation: speculative re-dispatch, first result wins.

A straggling worker (the paper's overloaded-host analogue) must not
dictate stage latency when a twin dispatch could finish sooner.  These
tests pin the speculation contract:

* a task older than the straggler threshold (the ``soft_timeout_s``
  floor, or a quantile of the live ``pool.task_exec_s`` histogram scaled
  by ``straggler_factor``) gets exactly one speculative twin;
* the first result to land settles the shard; the loser is abandoned,
  counted as ``pool.speculative_losses``, and never re-merged — results
  stay bit-identical to a serial run;
* the twin is a *new dispatch of the same logical attempt*: it consumes
  no retry budget;
* ``speculative=False`` turns the whole mechanism off.
"""

import time

import pytest

from repro import obs
from repro.engine.chaos_infra import FAULTS_ENV
from repro.engine.deadline import TaskDeadline
from repro.engine.parallel import WorkerPool
from repro.obs import events as obs_events

#: The injected slowdown; a speculative win must beat this by a wide margin.
SLOW_S = 8.0

SLOW_SHARD_1 = (
    '{"kind": "slow", "shards": [1], "times": 1, "duration_s": %g}' % SLOW_S
)


@pytest.fixture(autouse=True)
def _clean_surfaces():
    obs.reset_metrics()
    obs.reset_report()
    yield
    obs.reset_metrics()
    obs.reset_report()


def ident(value):
    return value


def test_speculative_twin_beats_the_straggler(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, SLOW_SHARD_1)
    deadline = TaskDeadline(soft_timeout_s=0.3, speculative=True)
    with obs_events.recording() as log:
        started = time.perf_counter()
        with WorkerPool(2) as pool:
            results = pool.map_shards(
                ident,
                [(0,), (1,), (2,)],
                max_attempts=2,
                deadline=deadline,
            )
            elapsed = time.perf_counter() - started
            pool.kill()  # don't join the worker still sleeping off the fault
    assert results == [0, 1, 2]
    assert elapsed < SLOW_S / 2  # the twin won; we never waited out the fault

    assert obs.counter_value("pool.speculative_dispatched") == 1.0
    assert obs.counter_value("pool.speculative_wins") == 1.0
    assert obs.counter_value("pool.speculative_losses") == 1.0
    # the twin consumed no retry budget
    assert obs.counter_value("pool.tasks_retried") == 0.0
    (event,) = log.by_kind(obs_events.SPECULATIVE_DISPATCH)
    assert event.fields["shard"] == 1
    assert event.fields["age_s"] >= 0.3
    assert event.fields["threshold_s"] == pytest.approx(0.3)


def test_speculation_off_waits_for_the_straggler(monkeypatch):
    """With the switch off the stage simply waits — results still correct."""
    monkeypatch.setenv(
        FAULTS_ENV,
        '{"kind": "slow", "shards": [1], "times": 1, "duration_s": 1.0}',
    )
    deadline = TaskDeadline(soft_timeout_s=0.1, speculative=False)
    started = time.perf_counter()
    with WorkerPool(2) as pool:
        results = pool.map_shards(
            ident, [(0,), (1,)], max_attempts=2, deadline=deadline
        )
    elapsed = time.perf_counter() - started
    assert results == [0, 1]
    assert elapsed >= 1.0  # waited the slowdown out
    assert obs.counter_value("pool.speculative_dispatched") == 0.0


def test_no_threshold_no_speculation(monkeypatch):
    """Speculative=True but no floor and no histogram: nothing to act on."""
    monkeypatch.setenv(
        FAULTS_ENV,
        '{"kind": "slow", "shards": [0], "times": 1, "duration_s": 0.5}',
    )
    deadline = TaskDeadline(speculative=True)  # no soft_timeout_s
    obs.reset_metrics()  # ensure no pool.task_exec_s history feeds a quantile
    with WorkerPool(2) as pool:
        results = pool.map_shards(
            ident, [(0,), (1,)], max_attempts=2, deadline=deadline
        )
    assert results == [0, 1]
    assert obs.counter_value("pool.speculative_dispatched") == 0.0


def test_at_most_one_twin_per_shard(monkeypatch):
    """A straggler is speculated on once, not once per poll tick."""
    monkeypatch.setenv(FAULTS_ENV, SLOW_SHARD_1)
    deadline = TaskDeadline(
        soft_timeout_s=0.2, speculative=True, poll_interval_s=0.02
    )
    with WorkerPool(2) as pool:
        results = pool.map_shards(
            ident, [(0,), (1,), (2,)], max_attempts=2, deadline=deadline
        )
        pool.kill()
    assert results == [0, 1, 2]
    assert obs.counter_value("pool.speculative_dispatched") == 1.0


def test_histogram_quantile_raises_the_threshold(monkeypatch):
    """A live exec-time distribution lifts the threshold above the floor.

    With 3x-quantile well above the tiny floor, normal tasks finishing
    near the quantile are NOT speculated on merely for beating the floor.
    """
    deadline = TaskDeadline(
        soft_timeout_s=0.05,
        speculative=True,
        min_straggler_samples=4,
        straggler_factor=3.0,
    )
    with WorkerPool(2) as pool:
        # seed pool.task_exec_s with ordinary executions
        pool.map_shards(ident, [(index,) for index in range(8)])
        hist = obs.global_registry().histograms.get("pool.task_exec_s")
        assert hist is not None and hist.count >= 4
        threshold = deadline.straggler_threshold_s(hist)
        # quantile-derived, floored at soft, and strictly above the floor
        assert threshold >= 0.05
        assert threshold == max(
            0.05, hist.percentile(95.0) * 3.0
        )
