"""Unit tests for the reshaping runtime scenarios."""

import numpy as np
import pytest

from repro.reshaping import (
    ConversionPolicy,
    FleetDescription,
    ReshapingComparison,
    ReshapingRuntime,
    ThrottleBoostPolicy,
)
from repro.sim import DemandTrace, DVFSModel, ServerPowerModel
from repro.traces import TimeGrid


@pytest.fixture
def grid():
    return TimeGrid.for_days(2, step_minutes=60)


@pytest.fixture
def fleet():
    return FleetDescription(
        n_lc=100,
        n_batch=40,
        lc_model=ServerPowerModel(90, 240),
        batch_model=ServerPowerModel(150, 235),
        budget_watts=45_000.0,
    )


@pytest.fixture
def demand(grid):
    """Diurnal demand: peak per-server load 0.85 on the original fleet."""
    hours = grid.hours_of_day()
    shape = 0.35 + 0.5 * np.exp(2.0 * (np.cos(2 * np.pi * (hours - 14) / 24) - 1))
    return DemandTrace(grid, shape * 100.0)


@pytest.fixture
def runtime(fleet):
    return ReshapingRuntime(
        fleet,
        ConversionPolicy(conversion_threshold=0.85),
        throttle=ThrottleBoostPolicy(),
        dvfs=DVFSModel(),
    )


class TestFleetValidation:
    def test_requires_lc(self):
        with pytest.raises(ValueError):
            FleetDescription(
                n_lc=0, n_batch=1,
                lc_model=ServerPowerModel(90, 240),
                batch_model=ServerPowerModel(150, 235),
                budget_watts=1000,
            )

    def test_requires_budget(self):
        with pytest.raises(ValueError):
            FleetDescription(
                n_lc=1, n_batch=1,
                lc_model=ServerPowerModel(90, 240),
                batch_model=ServerPowerModel(150, 235),
                budget_watts=0,
            )


class TestPre:
    def test_no_drops_at_calibrated_demand(self, runtime, demand):
        result = runtime.run_pre(demand)
        assert result.dropped_fraction() == pytest.approx(0.0, abs=1e-9)

    def test_power_positive_and_bounded(self, runtime, demand, fleet):
        result = runtime.run_pre(demand)
        assert result.total_power.min() > 0
        assert result.peak_power() <= fleet.budget_watts

    def test_slack_metrics(self, runtime, demand):
        result = runtime.run_pre(demand)
        assert result.mean_slack() > 0
        assert result.energy_slack() > 0
        assert result.overload_steps() == 0


class TestLCOnly:
    def test_more_servers_serve_more(self, runtime, demand):
        pre = runtime.run_pre(demand)
        grown = runtime.run_lc_only(demand.scaled(1.1), 10)
        assert grown.lc_total() > pre.lc_total()

    def test_negative_extra_rejected(self, runtime, demand):
        with pytest.raises(ValueError):
            runtime.run_lc_only(demand, -1)


class TestConversion:
    def test_phase_switching_visible(self, runtime, demand):
        result = runtime.run_conversion(demand.scaled(1.1), 10)
        # Conversion servers join LC at peak...
        assert result.n_lc_active.max() == pytest.approx(110.0)
        # ...and leave it off-peak.
        assert result.n_lc_active.min() == pytest.approx(100.0)

    def test_batch_gains_during_offpeak(self, runtime, demand, fleet):
        pre = runtime.run_pre(demand)
        conv = runtime.run_conversion(demand.scaled(1.1), 10)
        assert conv.batch_total() > pre.batch_total()

    def test_convertible_cap_respected(self, fleet, demand):
        policy = ConversionPolicy(
            conversion_threshold=0.85, max_batch_conversion_fraction=0.1
        )
        runtime = ReshapingRuntime(fleet, policy)
        result = runtime.run_conversion(demand.scaled(1.1), 10)
        assert result.n_batch_active.max() <= fleet.n_batch + 4


class TestThrottleBoost:
    def test_throttles_during_peak(self, runtime, demand):
        result = runtime.run_throttle_boost(demand.scaled(1.1), 10, 5)
        assert result.batch_freq.min() == pytest.approx(0.8)

    def test_boosts_during_offpeak(self, runtime, demand):
        result = runtime.run_throttle_boost(demand.scaled(1.1), 10, 5)
        assert result.batch_freq.max() > 1.0

    def test_stays_under_budget(self, runtime, demand, fleet):
        result = runtime.run_throttle_boost(demand.scaled(1.1), 10, 5)
        assert result.overload_steps() == 0

    def test_default_e_th_from_policy(self, runtime, demand):
        result = runtime.run_throttle_boost(demand.scaled(1.1), 10)
        assert result.n_lc_active.max() >= 110.0

    def test_negative_e_th_rejected(self, runtime, demand):
        with pytest.raises(ValueError):
            runtime.run_throttle_boost(demand, 10, -1)


class TestComparison:
    def test_improvements_and_slack(self, runtime, demand):
        comparison = ReshapingComparison(pre=runtime.run_pre(demand))
        comparison.scenarios["conversion"] = runtime.run_conversion(
            demand.scaled(1.1), 10
        )
        comparison.scenarios["throttle_boost"] = runtime.run_throttle_boost(
            demand.scaled(1.15), 10, 5
        )
        assert comparison.lc_improvement("conversion") > 0
        assert comparison.batch_improvement("conversion") > 0
        assert comparison.lc_improvement("throttle_boost") > comparison.lc_improvement(
            "conversion"
        )
        assert comparison.slack_reduction("throttle_boost") > 0

    def test_slack_reduction_with_mask(self, runtime, demand):
        comparison = ReshapingComparison(pre=runtime.run_pre(demand))
        comparison.scenarios["conversion"] = runtime.run_conversion(
            demand.scaled(1.1), 10
        )
        mask = np.zeros(demand.grid.n_samples, dtype=bool)
        mask[:10] = True
        value = comparison.slack_reduction("conversion", mask=mask)
        assert isinstance(value, float)

    def test_scenario_baseline(self, runtime, demand):
        comparison = ReshapingComparison(pre=runtime.run_pre(demand))
        comparison.scenarios["lc_only"] = runtime.run_lc_only(demand.scaled(1.1), 10)
        comparison.scenarios["conversion"] = runtime.run_conversion(
            demand.scaled(1.1), 10
        )
        value = comparison.slack_reduction("conversion", baseline="lc_only")
        assert isinstance(value, float)
