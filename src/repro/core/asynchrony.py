"""Asynchrony scores — the paper's temporal-complementarity metric (Sec. 3.4).

For a set of power traces *M*::

    A_M = Σ_{j∈M} peak(P_j)  /  peak(Σ_{j∈M} P_j)          (Eq. 6)

``A_M = 1`` means every member peaks simultaneously (worst grouping);
``A_M = |M|`` means aggregation adds nothing to the peak (best grouping).

Instances are embedded for clustering via *I-to-S* score vectors: the
asynchrony score of the instance's averaged I-trace against each of the
top-consumer S-traces (Sec. 3.5).  Sec. 3.6's adaptation loop uses the
*differential* asynchrony score of an instance against the rest of its power
node.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from .. import obs
from ..traces.series import PowerTrace
from ..traces.traceset import TraceSet

ArrayLike = Union[np.ndarray, Sequence[float]]

#: Default ceiling on the broadcast block a :func:`score_matrix` chunk may
#: materialise.  At ``chunk_size=256``, 20 basis services, and a week of
#: per-minute samples the naive block is ~415 MB; the bound derives an
#: effective chunk size that keeps it under ~128 MB while leaving small
#: inputs on the configured chunk size.
DEFAULT_SCORE_MAX_BYTES = 128 * 1024 * 1024

#: Below this many instance rows a :func:`score_matrix` call ignores
#: ``workers``: publishing shared segments and round-tripping the pool
#: costs more than scoring a small fleet in place.  The placer's per-node
#: recursion stays serial; only fleet-scale calls fan out.
PARALLEL_MIN_ROWS = 4096


def asynchrony_score(traces: Union[TraceSet, Sequence[PowerTrace]]) -> float:
    """The asynchrony score ``A_M`` of a set of power traces (Eq. 6).

    Accepts either a :class:`TraceSet` or a sequence of :class:`PowerTrace`.
    Raises on an empty set; a singleton scores exactly 1.0.
    """
    if isinstance(traces, TraceSet):
        if len(traces) == 0:
            raise ValueError("asynchrony score of an empty set is undefined")
        numerator = traces.sum_of_peaks()
        denominator = traces.aggregate_peak()
    else:
        traces = list(traces)
        if not traces:
            raise ValueError("asynchrony score of an empty set is undefined")
        numerator = sum(trace.peak() for trace in traces)
        denominator = PowerTrace.aggregate(traces).peak()
    if denominator == 0:
        # All-zero traces peak "together" by convention: perfectly synchronous.
        return 1.0
    return numerator / denominator


def pairwise_asynchrony(a: PowerTrace, b: PowerTrace) -> float:
    """The I-to-I asynchrony score of two traces (Eq. 7)."""
    return asynchrony_score([a, b])


def score_vector(instance: PowerTrace, basis: TraceSet) -> np.ndarray:
    """The I-to-S asynchrony score vector of one instance (Sec. 3.4).

    Element *k* is the asynchrony score between the instance's averaged
    I-trace and the *k*-th basis S-trace.  Shape ``(len(basis),)``.
    """
    instance.grid.require_same(basis.grid)
    return _score_rows(instance.values[np.newaxis, :], basis.matrix)[0]


def score_matrix(
    instances: TraceSet,
    basis: TraceSet,
    *,
    chunk_size: int = 256,
    max_bytes: Optional[int] = DEFAULT_SCORE_MAX_BYTES,
    dtype: Optional[object] = None,
    workers: int = 1,
    parallel_min_rows: int = PARALLEL_MIN_ROWS,
) -> np.ndarray:
    """I-to-S score vectors for a whole fleet, shape ``(n_instances, n_basis)``.

    Vectorised and chunked: computing ``peak(PI_i + PS_k)`` for all (i, k)
    pairs materialises an ``(chunk, n_basis, n_samples)`` block at a time
    rather than the full fleet tensor.  The effective chunk size is the
    smaller of ``chunk_size`` and what fits a block into ``max_bytes``
    (pass ``max_bytes=None`` to disable the bound); results are identical
    whatever the chunking, only memory and locality change.

    ``dtype`` is the exactness toggle: ``None`` (default) broadcasts in
    float64 — bit-identical to every historical result — while
    ``np.float32`` is the fleet-scale fast path, halving the broadcast
    block's memory traffic at the cost of float32 rounding in the peaks
    (scores still come back float64).

    ``workers > 1`` shards the rows across the persistent worker pool
    (:mod:`repro.engine.parallel`) over shared-memory views of the two
    matrices — tasks carry only row ranges, never trace data.  Row scores
    are independent, so the result is identical for any worker count;
    batches smaller than ``parallel_min_rows`` run serially regardless.
    """
    instances.grid.require_same(basis.grid)
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    work_dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
    if max_bytes is not None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        bytes_per_row = len(basis) * instances.grid.n_samples * work_dtype.itemsize
        chunk_size = max(1, min(chunk_size, max_bytes // max(bytes_per_row, 1)))
    n = len(instances)
    with obs.span(
        "score",
        instances=n,
        basis=len(basis),
        chunk_size=chunk_size,
        workers=workers,
    ):
        obs.count("score.pairs", n * len(basis))
        if workers > 1 and n >= max(parallel_min_rows, 2 * workers):
            return _score_matrix_sharded(
                instances, basis, work_dtype, chunk_size, workers
            )
        basis_block = np.asarray(basis.matrix, dtype=work_dtype)
        scores = np.empty((n, len(basis)))
        for start in range(0, n, chunk_size):
            stop = min(start + chunk_size, n)
            obs.count("score.chunks")
            scores[start:stop] = _score_rows(
                np.asarray(instances.matrix[start:stop], dtype=work_dtype),
                basis_block,
            )
        return scores


def _score_matrix_sharded(
    instances: TraceSet,
    basis: TraceSet,
    work_dtype: np.dtype,
    chunk_size: int,
    workers: int,
) -> np.ndarray:
    """Fan row shards out to the persistent pool over shared memory.

    The instance and basis matrices are published once; each task is a
    ``(handle, handle, start, stop, chunk_size, dtype)`` descriptor a few
    hundred bytes long.  Segments are unlinked in the ``finally`` whatever
    happens — normal return, a worker death surfacing as
    ``BrokenProcessPool`` after retries, or a ``KeyboardInterrupt``.
    """
    # Lazy imports: repro.engine imports repro.core via the chaos harness,
    # so the reverse edge must not exist at module scope.
    from ..engine.parallel import get_pool
    from ..engine.sharedmem import SharedMatrix, shard_ranges

    n = len(instances)
    pool = get_pool(workers)
    with SharedMatrix.create(instances.matrix, dtype=work_dtype) as shared_rows:
        with SharedMatrix.create(basis.matrix, dtype=work_dtype) as shared_basis:
            tasks = [
                (
                    shared_rows.handle,
                    shared_basis.handle,
                    start,
                    stop,
                    chunk_size,
                )
                for start, stop in shard_ranges(n, workers)
            ]
            obs.count("score.shards", len(tasks))
            blocks = pool.map_shards(_score_shard, tasks, label="score.shard")
    scores = np.empty((n, len(basis)))
    row = 0
    for block in blocks:
        scores[row : row + block.shape[0]] = block
        row += block.shape[0]
    return scores


def _score_shard(
    rows_handle: object,
    basis_handle: object,
    start: int,
    stop: int,
    chunk_size: int,
) -> np.ndarray:
    """One worker's row range of the score matrix (runs in the pool)."""
    from ..engine.sharedmem import attach_rows, attached_view

    rows = attach_rows(rows_handle, start, stop)
    basis_block = attached_view(basis_handle)
    scores = np.empty((stop - start, basis_block.shape[0]))
    for offset in range(0, rows.shape[0], chunk_size):
        block = rows[offset : offset + chunk_size]
        scores[offset : offset + block.shape[0]] = _score_rows(block, basis_block)
    return scores


def _score_rows(rows: np.ndarray, basis_matrix: np.ndarray) -> np.ndarray:
    """Score each row trace against every basis trace (dense broadcast).

    ``rows`` and ``basis_matrix`` must share a dtype; the broadcast runs in
    that dtype (the float32 fast path halves its footprint) and the scores
    are returned as float64 either way.
    """
    row_peaks = rows.max(axis=1)                          # (c,)
    basis_peaks = basis_matrix.max(axis=1)                # (m,)
    # (c, m, T) broadcast sum, reduced over T immediately.
    combined_peaks = (rows[:, np.newaxis, :] + basis_matrix[np.newaxis, :, :]).max(axis=2)
    numerator = row_peaks[:, np.newaxis] + basis_peaks[np.newaxis, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        scores = np.where(combined_peaks > 0, numerator / combined_peaks, 1.0)
    return np.asarray(scores, dtype=np.float64)


def averaged_group_trace(
    group: TraceSet, exclude_id: str
) -> PowerTrace:
    """``PA_{i,N}``: the averaged aggregate trace of a node, excluding one
    instance (Sec. 3.6).

    Defined as ``Σ_{j∈S_N, j≠i} PI_j / |S_N − 1|``.
    """
    if exclude_id not in group:
        raise ValueError(f"instance {exclude_id} is not in the group")
    if len(group) < 2:
        raise ValueError("differential score needs at least two instances at the node")
    total = group.matrix.sum(axis=0) - group.row(exclude_id)
    return PowerTrace(group.grid, total / (len(group) - 1))


def differential_score(instance: PowerTrace, group_average: PowerTrace) -> float:
    """``AD_{i,N}``: differential asynchrony score of an instance against a
    node's averaged aggregate (Sec. 3.6)::

        AD = (peak(PI_i) + peak(PA_{i,N})) / peak(PI_i + PA_{i,N})
    """
    return pairwise_asynchrony(instance, group_average)


def differential_scores_for_node(group: TraceSet) -> dict:
    """Differential asynchrony score of every member of one node's group.

    The instance with the *lowest* score is the node's worst citizen — the
    swap candidate of the Sec. 3.6 adaptation loop.
    """
    if len(group) < 2:
        raise ValueError("differential scores need at least two instances")
    total = group.matrix.sum(axis=0)
    scores = {}
    divisor = len(group) - 1
    for trace_id in group.ids:
        rest = (total - group.row(trace_id)) / divisor
        instance = group.row(trace_id)
        combined_peak = float((instance + rest).max())
        numerator = float(instance.max()) + float(rest.max())
        scores[trace_id] = numerator / combined_peak if combined_peak > 0 else 1.0
    return scores
