"""Fragmentation metrics over placements (Sec. 2.2).

Couples the infrastructure's power view with the asynchrony machinery to
report, per level of the tree: sums of peaks, per-node asynchrony scores,
and slack statistics.  These are the quantities SmoothOperator monitors to
decide when a placement has gone stale (Sec. 3.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .. import obs
from ..infra.aggregation import NodePowerView
from ..infra.assignment import Assignment
from ..traces.traceset import TraceSet


@dataclass(frozen=True)
class LevelFragmentation:
    """Fragmentation summary for one level of the power tree."""

    level: str
    sum_of_peaks: float
    node_peaks: Dict[str, float]
    node_asynchrony: Dict[str, float]

    @property
    def mean_asynchrony(self) -> float:
        if not self.node_asynchrony:
            return 0.0
        return float(np.mean(list(self.node_asynchrony.values())))

    @property
    def min_asynchrony(self) -> float:
        if not self.node_asynchrony:
            return 0.0
        return float(min(self.node_asynchrony.values()))

    def worst_node(self) -> Optional[str]:
        """The most fragmented node: lowest asynchrony score (Sec. 3.6)."""
        if not self.node_asynchrony:
            return None
        return min(self.node_asynchrony.items(), key=lambda item: item[1])[0]


def node_asynchrony_scores(
    assignment: Assignment,
    traces: TraceSet,
    level: str,
    *,
    view: Optional[NodePowerView] = None,
) -> Dict[str, float]:
    """Asynchrony score of every node at ``level`` under ``assignment``.

    Score of a node = Σ member peaks / peak of the node's aggregate trace.
    Nodes with no members are skipped.  Passing a :class:`NodePowerView`
    built from the same assignment and traces reuses its cached per-node
    aggregates instead of re-summing every member row per node — callers
    that already hold a view (e.g. :func:`fragmentation_report`) aggregate
    each node exactly once.
    """
    member_peaks = traces.peaks()
    scores: Dict[str, float] = {}
    for node in assignment.topology.nodes_at_level(level):
        members = assignment.instances_under(node.name)
        if not members:
            continue
        indices = [traces.index_of(instance_id) for instance_id in members]
        sum_peaks = float(member_peaks[indices].sum())
        if view is not None:
            aggregate_peak = view.node_peak(node.name)
            obs.count("metrics.node_aggregate_reused")
        else:
            aggregate_peak = float(traces.matrix[indices].sum(axis=0).max())
            obs.count("metrics.node_aggregate_recomputed")
        scores[node.name] = sum_peaks / aggregate_peak if aggregate_peak > 0 else 1.0
    return scores


class AsynchronyIndex:
    """Per-node asynchrony scores at one level, maintained under deltas.

    Wraps a :class:`~repro.infra.aggregation.NodePowerView` and keeps the
    level's scores current as :class:`~repro.engine.delta.FleetDelta`\\ s
    arrive: only the dirtied nodes are re-scored, with the identical
    expression :func:`node_asynchrony_scores` uses in its view-backed
    path, so :meth:`scores` is bit-identical to a full recompute over a
    freshly rebuilt view.

    The index drives its own view, but shares it safely: if another
    subscriber already advanced the view by this delta (the view's
    ``version`` is one ahead), the index reuses ``view.last_dirty``
    instead of re-applying.
    """

    def __init__(self, view: NodePowerView, level: str) -> None:
        self.view = view
        self.level = level
        self._nodes = list(view.topology.nodes_at_level(level))
        if not self._nodes:
            raise ValueError(f"topology has no nodes at level {level!r}")
        self._member_peaks = view.traces.peaks()
        self._seen_version = view.version
        self._scores: Dict[str, Optional[float]] = {}
        for node in self._nodes:
            self._scores[node.name] = self._score_node(node.name)

    # ------------------------------------------------------------------
    def _subtree_members(self, node_name: str):
        node = self.view.topology.node(node_name)
        members = []
        for leaf in node.leaves():
            members.extend(self.view.member_ids(leaf.name))
        return members

    def _score_node(self, node_name: str) -> Optional[float]:
        """Score one node — ``None`` when it is empty (skipped, like the full pass)."""
        members = self._subtree_members(node_name)
        if not members:
            return None
        traces = self.view.traces
        indices = [traces.index_of(instance_id) for instance_id in members]
        sum_peaks = float(self._member_peaks[indices].sum())
        aggregate_peak = self.view.node_peak(node_name)
        obs.count("metrics.node_aggregate_reused")
        return sum_peaks / aggregate_peak if aggregate_peak > 0 else 1.0

    # ------------------------------------------------------------------
    def apply_delta(self, delta) -> None:
        if self.view.version == self._seen_version:
            dirty = self.view.apply_delta(delta)
        elif self.view.version == self._seen_version + 1:
            dirty = list(self.view.last_dirty)
        else:
            raise RuntimeError(
                "view advanced more than one delta ahead of this index"
            )
        self._seen_version = self.view.version
        traces = self.view.traces
        for instance_id in delta.trace_updates:
            # Patch the cached per-member peaks for rewritten rows; max is
            # exact, so the patched entry equals a fresh traces.peaks().
            row = traces.index_of(instance_id)
            self._member_peaks[row] = traces.matrix[row].max()
        dirty_set = set(dirty)
        refreshed = 0
        for node in self._nodes:
            if node.name in dirty_set:
                self._scores[node.name] = self._score_node(node.name)
                refreshed += 1
        obs.count("delta.scores_recomputed", refreshed)

    def scores(self) -> Dict[str, float]:
        """Current per-node scores, in level-node order, empty nodes skipped."""
        return {
            name: score
            for name, score in self._scores.items()
            if score is not None
        }


def fragmentation_report(
    assignment: Assignment, traces: TraceSet
) -> Dict[str, LevelFragmentation]:
    """Per-level fragmentation summary of a placement."""
    with obs.span("fragmentation_report"):
        view = NodePowerView(assignment.topology, assignment, traces)
        report: Dict[str, LevelFragmentation] = {}
        for level in assignment.topology.levels():
            peaks = view.peaks_at_level(level)
            report[level] = LevelFragmentation(
                level=level,
                sum_of_peaks=float(sum(peaks.values())),
                node_peaks=peaks,
                node_asynchrony=node_asynchrony_scores(
                    assignment, traces, level, view=view
                ),
            )
        return report


def required_budget(view: NodePowerView, level: str, *, under_provision: float = 0.0) -> float:
    """Total budget needed at ``level`` to supply the placement (Figure 11).

    With ``under_provision = u``, each node is provisioned at the
    ``(100-u)``-th percentile of its aggregate trace instead of its peak.
    """
    if not 0 <= under_provision < 100:
        raise ValueError("under_provision must be in [0, 100)")
    q = 100.0 - under_provision
    total = 0.0
    for node in view.topology.nodes_at_level(level):
        total += view.node_percentile(node.name, q)
    return total
