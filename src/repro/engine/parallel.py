"""Parallel execution: a persistent worker pool + shared-memory data plane.

:func:`run_many` drives :class:`~repro.engine.spec.ScenarioSpec` /
:class:`~repro.engine.spec.ChaosSpec` lists through worker processes.  The
original implementation built a fresh ``ProcessPoolExecutor`` per call (and
per retry round), which made parallelism a net loss at bench scale — pool
spawn plus per-task pickling of whole fleets cost more than the simulation
itself (``BENCH_engine.json`` recorded a 0.74x "speedup").  Three changes
fix that:

* **persistent pools** — :func:`get_pool` keeps one :class:`WorkerPool`
  alive per worker count for the life of the process, so workers are
  spawned once and reused by every subsequent ``run_many`` / sharded-stage
  call (``fork`` start method where available: workers inherit warm dataset
  caches instead of re-synthesizing them);
* **pinned worker threads** — each worker's initializer pins the BLAS /
  OpenMP thread-pool environment (``OMP_NUM_THREADS`` etc.) to
  :data:`DEFAULT_WORKER_THREADS`, so N workers do not oversubscribe the
  host with N × M library threads;
* **shared-memory shards** — bulk matrix jobs go through
  :meth:`WorkerPool.map_shards`: the matrix is published once via
  :mod:`repro.engine.sharedmem` and tasks carry only row ranges and
  parameters, never the data.

Worker death does not sink a suite.  A killed worker breaks the whole
executor (every outstanding future raises ``BrokenProcessPool``), so the
pool is rebuilt and the unfinished specs are retried with exponential
backoff, up to ``max_attempts`` tries per spec; the backoff sleep only ever
runs when another attempt follows — a spec out of attempts fails
immediately as a :class:`RunFailure` in its slot of the result list.
``workers <= 1`` or a single spec short-circuits to a plain serial loop
that never touches a pool.

The pool is not an observability boundary: unless ``REPRO_OBS_CAPTURE=0``
disables it, every pooled task runs under worker-side telemetry capture
(:mod:`repro.obs.remote`) and ships its spans, metric deltas, and events
back with its result; the coordinator merges them into its live tracer,
registry, and event log, records pool health metrics (dispatch/completion
counters, roundtrip/execution/queue latency histograms, worker deaths and
rebuilds), and feeds each stage into the unified run report
(:mod:`repro.obs.report`).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from .spec import ChaosSpec, ScenarioSpec
from .state import RunArtifacts

#: Tries per spec before it is written off as a :class:`RunFailure`.
DEFAULT_MAX_ATTEMPTS = 3

#: Base delay between retry rounds (doubles per round).
DEFAULT_RETRY_BACKOFF_S = 0.25

#: Thread-pool size pinned into every worker (override with the
#: ``REPRO_WORKER_THREADS`` environment variable).  One thread per worker
#: is the right default: the pool already owns the cores, and letting each
#: worker's BLAS spin up ``os.cpu_count()`` threads of its own
#: oversubscribes the host N×M.
DEFAULT_WORKER_THREADS = 1

#: Environment knobs the worker initializer pins.  Covers OpenMP, the
#: common BLAS builds numpy links against, and numexpr — the libraries
#: that auto-size their pools to the whole machine.
WORKER_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


@dataclass
class RunFailure:
    """One spec's structured failure after every retry was exhausted.

    Occupies the spec's slot in :func:`run_many`'s result list, so callers
    always get one entry per spec, in spec order — filter with
    ``isinstance(entry, RunFailure)`` (or check :attr:`RunArtifacts.result`)
    to separate the casualties from the survivors.
    """

    spec: Any
    error_type: str
    error: str
    attempts: int

    @property
    def result(self) -> None:
        """Mirror of :attr:`RunArtifacts.result`, always ``None``."""
        return None


def execute(spec: Any) -> RunArtifacts:
    """Run one spec (scenario, chaos-harness, or callable) and wrap it.

    Module-level so it pickles for worker processes.  Zero-argument
    callables are the escape hatch for custom workloads (and for
    fault-injection tests): the callable runs as-is, and its return value
    is wrapped in :class:`RunArtifacts` unless it already is one.
    """
    if isinstance(spec, ScenarioSpec):
        from .core import Engine

        return Engine.from_spec(spec).run(spec)
    if isinstance(spec, ChaosSpec):
        # Lazy: the chaos harness imports the engine, not vice versa.
        from ..faults.harness import run_chaos_scenario
        from ..obs import events as obs_events

        outcome = run_chaos_scenario(spec.resolved_scenario(), **spec.run_kwargs())
        return RunArtifacts(
            spec=spec,
            result=outcome,
            events=obs_events.get_event_log(),
        )
    if callable(spec):
        outcome = spec()
        if isinstance(outcome, RunArtifacts):
            return outcome
        return RunArtifacts(spec=spec, result=outcome)
    raise TypeError(f"cannot execute spec of type {type(spec).__name__}")


# ----------------------------------------------------------------------
# worker-side plumbing
# ----------------------------------------------------------------------
def worker_thread_count() -> int:
    """The thread-pool size workers pin (env override, floor 1)."""
    try:
        return max(1, int(os.environ.get("REPRO_WORKER_THREADS", "")))
    except ValueError:
        return DEFAULT_WORKER_THREADS


def _init_worker(n_threads: int) -> None:
    """Pool initializer: pin library thread pools inside the worker.

    Runs once per worker process, before any task.  Sets the standard
    thread-count environment variables so any library initialised after
    this point sizes itself to ``n_threads``, and asks already-loaded
    pools to shrink via ``threadpoolctl`` when that package is available
    (forked workers inherit the parent's BLAS state, which env vars alone
    cannot retroactively change).
    """
    for name in WORKER_THREAD_ENV_VARS:
        os.environ[name] = str(n_threads)
    try:  # best-effort: not a baked-in dependency
        import threadpoolctl

        threadpoolctl.threadpool_limits(n_threads)
    except Exception:
        pass


def _pool_execute(spec: Any) -> RunArtifacts:
    """Worker-side task wrapper around :func:`execute`.

    Persistent workers outlive many tasks, so an event log inherited at
    fork time must not accumulate every task's events for the life of the
    worker: when recording is active, each task runs under a fresh log and
    its artifacts carry only its own events.
    """
    from ..obs import events as obs_events

    if obs_events.get_event_log() is None:
        return execute(spec)
    with obs_events.recording():
        return execute(spec)


def _pool_execute_captured(spec: Any, index: int, attempt: int):
    """Worker-side spec task with telemetry capture.

    Wraps :func:`_pool_execute` in :func:`repro.obs.remote.run_captured`,
    so the worker ships ``(artifacts, bundle)`` — the bundle carrying the
    spec's span subtree, metric deltas, and capture-level events back to
    the coordinator for merging.
    """
    from ..obs import remote as obs_remote

    return obs_remote.run_captured(_pool_execute, index, "run.spec", attempt, (spec,))


def _bundle_stats(bundle: Any, roundtrip_s: float, *, ok: bool = True):
    """Coordinator-side: a run-report row for one shipped bundle."""
    from ..obs.report import TaskStats

    return TaskStats(
        shard_id=bundle.shard_id,
        worker_pid=bundle.worker_pid,
        attempt=bundle.attempt,
        exec_s=bundle.wall_s,
        cpu_s=bundle.cpu_s,
        roundtrip_s=roundtrip_s,
        queue_s=max(0.0, roundtrip_s - bundle.wall_s),
        ok=ok,
    )


# ----------------------------------------------------------------------
# the persistent pool
# ----------------------------------------------------------------------
class WorkerPool:
    """A process pool spawned once and reused across calls.

    Wraps a ``ProcessPoolExecutor`` whose workers pin their thread pools at
    startup (:func:`_init_worker`).  The executor is created lazily on
    first submit and rebuilt on demand after a ``BrokenProcessPool`` —
    :attr:`generation` counts executor builds, so callers (and tests) can
    observe that back-to-back batches reused one set of workers.
    """

    def __init__(
        self,
        workers: int,
        *,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
        worker_threads: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("a pool needs at least one worker")
        self.workers = workers
        if mp_context is None:
            try:
                mp_context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - fork unavailable (non-POSIX)
                mp_context = multiprocessing.get_context()
        self._mp_context = mp_context
        self._worker_threads = (
            worker_threads if worker_threads is not None else worker_thread_count()
        )
        self._executor: Optional[ProcessPoolExecutor] = None
        #: Number of executors built over this pool's lifetime.
        self.generation = 0

    # ------------------------------------------------------------------
    @property
    def is_running(self) -> bool:
        return self._executor is not None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._mp_context,
                initializer=_init_worker,
                initargs=(self._worker_threads,),
            )
            self.generation += 1
        return self._executor

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any):
        """Submit one task, building the executor on first use."""
        return self._ensure_executor().submit(fn, *args, **kwargs)

    def submit_resilient(
        self,
        fn: Callable[..., Any],
        /,
        *args: Any,
        on_rebuild: Optional[Callable[[], None]] = None,
    ):
        """Submit, rebuilding first when a prior task's death broke the pool.

        A worker death breaks the whole executor *asynchronously*, so a
        submit racing that death raises ``BrokenProcessPool`` synchronously
        instead of returning a future.  The task never reached a worker —
        nothing ran, nothing can run twice — so the right response is to
        rebuild and resubmit on the fresh executor rather than let the
        exception escape and strand a broken executor in the persistent
        pool.  Still bounded: every break burns an attempt for each task
        that was in flight on the dead executor, so a persistent killer
        exhausts ``max_attempts`` like any other failure.
        """
        from concurrent.futures.process import BrokenProcessPool

        while True:
            try:
                return self.submit(fn, *args)
            except BrokenProcessPool:
                if on_rebuild is not None:
                    on_rebuild()
                self.rebuild()

    def warm(self) -> None:
        """Spawn the workers now and wait for every initializer to finish.

        One no-op barrier task per worker forces the executor to actually
        fork/spawn, so the first real batch is not charged the startup
        cost.  Forking *after* the parent has warmed its dataset caches
        also hands every worker those caches for free.
        """
        futures = [self.submit(_worker_barrier, index) for index in range(self.workers)]
        wait(futures)

    def rebuild(self) -> None:
        """Discard a (possibly broken) executor; the next submit re-forks."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def rebuild_if_broken(self) -> bool:
        """Rebuild only when the live executor really is broken.

        A resilient submit may already have swapped in a fresh executor
        this round; tearing that one down again would cancel the healthy
        tasks it is running.  Returns whether a rebuild happened.
        """
        executor = self._executor
        if executor is None or not getattr(executor, "_broken", False):
            return False
        self.rebuild()
        return True

    def shutdown(self) -> None:
        """Stop the workers.  The pool object stays reusable (lazy respawn)."""
        self.rebuild()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def map_shards(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Sequence[Any]],
        *,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        retry_backoff_s: float = 0.0,
        label: str = "shard",
        capture: Optional[bool] = None,
    ) -> List[Any]:
        """Run ``fn(*task)`` for every task, in task order, with retries.

        The sharded-stage workhorse: ``tasks`` are lightweight argument
        tuples (shared-memory handles, row ranges, parameters — see
        :mod:`repro.engine.sharedmem`), never bulk data.  A broken pool is
        rebuilt and unfinished tasks retried like :func:`run_many` does for
        specs; a task that exhausts its attempts re-raises its last error,
        because a missing shard (unlike a missing scenario) poisons the
        whole result matrix.

        Unless capture is disabled (the ``REPRO_OBS_CAPTURE`` kill switch,
        or ``capture=False``), every task runs under worker-side telemetry
        capture (:mod:`repro.obs.remote`): its spans, metric deltas, and
        events ship back with the result and are merged into this process's
        live tracer/registry/log — sorted by shard id, so the merged state
        is independent of completion order.  ``label`` names the per-task
        root span (tagged with shard id and worker pid) and the stage's
        entry in the run report (:mod:`repro.obs.report`); the pool also
        records its own health metrics (dispatch/completion/retry counters,
        roundtrip/execution/queue latency histograms).
        """
        from ..obs import metrics as obs_metrics
        from ..obs import remote as obs_remote

        do_capture = obs_remote.capture_enabled() and (capture is None or capture)
        results: List[Any] = [None] * len(tasks)
        pending = list(range(len(tasks)))
        errors: Dict[int, BaseException] = {}
        attempts = [0] * len(tasks)
        round_index = 0
        bundles: List[Any] = []
        stats: List[Any] = []
        started_at = time.perf_counter()

        def on_submit_rebuild() -> None:
            if do_capture:
                obs_metrics.count("pool.worker_deaths")
                obs_metrics.count("pool.rebuilds")

        isolate = False
        while pending:
            failed: List[int] = []
            round_broken = False
            # After a round in which the executor died, retry the survivors
            # one at a time: a repeat killer then only breaks its own
            # attempt, so an innocent task can lose at most one attempt as
            # collateral however persistent the killer is.
            groups = [[index] for index in pending] if isolate else [pending]
            for group in groups:
                future_of = {}
                dispatched_at = {}
                broken = False
                for index in group:
                    attempts[index] += 1
                    if do_capture:
                        future = self.submit_resilient(
                            obs_remote.run_captured,
                            fn,
                            index,
                            label,
                            attempts[index],
                            tuple(tasks[index]),
                            on_rebuild=on_submit_rebuild,
                        )
                    else:
                        future = self.submit_resilient(
                            fn, *tasks[index], on_rebuild=on_submit_rebuild
                        )
                    future_of[future] = index
                    dispatched_at[future] = time.perf_counter()
                if do_capture:
                    obs_metrics.count("pool.tasks_dispatched", len(future_of))
                    if round_index > 0:
                        obs_metrics.count("pool.tasks_retried", len(future_of))
                outstanding = set(future_of)
                while outstanding:
                    done, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        index = future_of[future]
                        try:
                            outcome = future.result()
                        except BaseException as error:  # noqa: BLE001
                            failed.append(index)
                            errors[index] = error
                            if do_capture:
                                obs_metrics.count("pool.tasks_failed")
                                bundle = obs_remote.bundle_from_error(error)
                                if bundle is not None:
                                    bundles.append(bundle)
                                    stats.append(
                                        _bundle_stats(
                                            bundle,
                                            time.perf_counter()
                                            - dispatched_at[future],
                                            ok=False,
                                        )
                                    )
                            if _pool_is_broken(error):
                                broken = True
                            continue
                        if do_capture:
                            results[index], bundle = outcome
                            roundtrip_s = (
                                time.perf_counter() - dispatched_at[future]
                            )
                            bundles.append(bundle)
                            stats.append(_bundle_stats(bundle, roundtrip_s))
                            obs_metrics.count("pool.tasks_completed")
                            obs_metrics.observe(
                                "pool.task_roundtrip_s", roundtrip_s
                            )
                            obs_metrics.observe("pool.task_exec_s", bundle.wall_s)
                            obs_metrics.observe(
                                "pool.task_queue_s",
                                max(0.0, roundtrip_s - bundle.wall_s),
                            )
                        else:
                            results[index] = outcome
                    # No early exit on ``broken``: a dead executor resolves
                    # every future it still holds (with BrokenProcessPool),
                    # and futures resubmitted on a fresh executor mid-round
                    # finish normally — condemning them here would burn
                    # attempts on tasks that are still running fine.
                if broken and self.rebuild_if_broken() and do_capture:
                    obs_metrics.count("pool.worker_deaths")
                    obs_metrics.count("pool.rebuilds")
                round_broken = round_broken or broken
            isolate = round_broken
            exhausted = [
                index
                for index in failed
                if attempts[index] >= max_attempts
            ]
            if exhausted:
                # The stage is lost, but its telemetry is not: merge what
                # shipped (including failed attempts' bundles) before
                # re-raising, so the failure is diagnosable from the
                # coordinator's own span tree and event log.
                if do_capture:
                    self._finish_stage(label, started_at, bundles, stats)
                raise errors[exhausted[0]]
            pending = sorted(set(failed))
            if pending:
                time.sleep(retry_backoff_s * (2**round_index))
                round_index += 1
        if do_capture:
            self._finish_stage(label, started_at, bundles, stats)
        return results

    def _finish_stage(
        self,
        label: str,
        started_at: float,
        bundles: Sequence[Any],
        stats: Sequence[Any],
    ) -> None:
        """Merge shipped telemetry and record the stage in the run report."""
        from ..obs import metrics as obs_metrics
        from ..obs import remote as obs_remote
        from ..obs import report as obs_report

        obs_remote.merge_bundles(bundles)
        obs_metrics.set_gauge("pool.workers", self.workers)
        obs_metrics.set_gauge("pool.generation", self.generation)
        obs_report.record_stage(
            label,
            workers=self.workers,
            wall_s=time.perf_counter() - started_at,
            tasks=stats,
            generation=self.generation,
        )


# ----------------------------------------------------------------------
# the process-wide persistent pools
# ----------------------------------------------------------------------
_POOLS: Dict[int, WorkerPool] = {}


def get_pool(workers: int) -> WorkerPool:
    """The process-wide persistent pool for ``workers`` worker processes.

    Created on first request and kept for the life of the process (one
    pool per distinct worker count), so repeated ``run_many`` calls and
    sharded stages reuse warm workers instead of re-spawning.
    """
    if workers < 1:
        raise ValueError("a pool needs at least one worker")
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _POOLS[workers] = WorkerPool(workers)
    return pool


def warm_pool(workers: int) -> WorkerPool:
    """Spawn (or re-spawn) the persistent pool's workers right now."""
    pool = get_pool(workers)
    pool.warm()
    return pool


@atexit.register
def shutdown_pools() -> None:
    """Stop every persistent pool (atexit hook; callable from tests)."""
    for pool in _POOLS.values():
        pool.shutdown()


def _worker_barrier(index: int) -> int:
    """No-op task used by :meth:`WorkerPool.warm` to force spawning."""
    return index


# ----------------------------------------------------------------------
# run_many
# ----------------------------------------------------------------------
def run_many(
    specs: Sequence[Any],
    *,
    workers: int = 1,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    pool: Optional[WorkerPool] = None,
) -> List[Any]:
    """Execute many specs, optionally across persistent worker processes.

    Results come back in spec order, one entry per spec: a
    :class:`RunArtifacts` on success, a :class:`RunFailure` once a spec has
    failed ``max_attempts`` times.  ``workers <= 1`` — or a batch of one —
    short-circuits to a serial loop in this process that creates no pool at
    all (cheapest for small batches and the only option on single-CPU
    hosts); otherwise the batch runs on the process-wide persistent pool
    for ``workers`` (or the explicit ``pool``), spawning workers only on
    first use.

    A dead worker breaks the whole executor, so every spec still in flight
    counts one failed attempt, the executor is rebuilt, and the survivors
    are resubmitted after an exponential backoff — an innocent spec sharing
    a pool with a crashing one is retried, not condemned.  The retry round
    after a break runs its survivors one at a time, so a repeat killer
    burns only its own remaining attempts, never an innocent's.  A break
    that
    races the submission loop itself costs nothing: the submit raises
    instead of returning a future, and the spec — which never reached a
    worker — is resubmitted on a rebuilt executor without burning an
    attempt.  The backoff never runs after a final failure: once no spec
    has attempts left there is nothing to wait for.

    Pooled batches run under worker-side telemetry capture unless the
    ``REPRO_OBS_CAPTURE`` kill switch disables it: each spec's span
    subtree, metric deltas, and capture-level events ship back with its
    artifacts and merge into this process's live observability surfaces,
    the pool records its health metrics, and the batch lands in the run
    report (:mod:`repro.obs.report`) as a ``run.many`` stage.  The serial
    short-circuit records nothing — in-process runs are already fully
    observable.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be at least 1")
    if retry_backoff_s < 0:
        raise ValueError("retry_backoff_s cannot be negative")
    specs = list(specs)
    results: List[Any] = [None] * len(specs)
    if workers <= 1 or len(specs) <= 1:
        for index, spec in enumerate(specs):
            results[index] = _run_serial(spec, max_attempts, retry_backoff_s)
        return results

    from ..obs import metrics as obs_metrics
    from ..obs import remote as obs_remote

    if pool is None:
        pool = get_pool(workers)
    do_capture = obs_remote.capture_enabled()
    bundles: List[Any] = []
    stats: List[Any] = []
    started_at = time.perf_counter()
    attempts = [0] * len(specs)
    pending = list(range(len(specs)))
    round_index = 0

    def on_submit_rebuild() -> None:
        if do_capture:
            obs_metrics.count("pool.worker_deaths")
            obs_metrics.count("pool.rebuilds")

    isolate = False
    while pending:
        failed: List[int] = []
        round_broken = False
        # After a round in which the executor died, retry the survivors one
        # at a time: a repeat killer then only breaks its own attempt, so
        # an innocent spec can lose at most one attempt as collateral
        # however persistent the killer is.
        groups = [[index] for index in pending] if isolate else [pending]
        for group in groups:
            future_of = {}
            dispatched_at = {}
            broken = False
            for index in group:
                attempts[index] += 1
                if do_capture:
                    future = pool.submit_resilient(
                        _pool_execute_captured,
                        specs[index],
                        index,
                        attempts[index],
                        on_rebuild=on_submit_rebuild,
                    )
                else:
                    future = pool.submit_resilient(
                        _pool_execute, specs[index], on_rebuild=on_submit_rebuild
                    )
                future_of[future] = index
                dispatched_at[future] = time.perf_counter()
            if do_capture:
                obs_metrics.count("pool.tasks_dispatched", len(future_of))
                if round_index > 0:
                    obs_metrics.count("pool.tasks_retried", len(future_of))
            outstanding = set(future_of)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in done:
                    index = future_of[future]
                    try:
                        outcome = future.result()
                    except BaseException as error:  # noqa: BLE001
                        # BrokenProcessPool lands here for *every* future
                        # that shared the dead executor; record the attempt
                        # and let the retry rounds sort survivors out.  A
                        # captured failure still ships its telemetry,
                        # attached to the exception itself.
                        failed.append(index)
                        results[index] = _failure(
                            specs[index], error, attempts[index]
                        )
                        if do_capture:
                            obs_metrics.count("pool.tasks_failed")
                            bundle = obs_remote.bundle_from_error(error)
                            if bundle is not None:
                                bundles.append(bundle)
                                stats.append(
                                    _bundle_stats(
                                        bundle,
                                        time.perf_counter()
                                        - dispatched_at[future],
                                        ok=False,
                                    )
                                )
                        if _pool_is_broken(error):
                            broken = True
                        continue
                    if do_capture:
                        results[index], bundle = outcome
                        roundtrip_s = time.perf_counter() - dispatched_at[future]
                        bundles.append(bundle)
                        stats.append(_bundle_stats(bundle, roundtrip_s))
                        obs_metrics.count("pool.tasks_completed")
                        obs_metrics.observe("pool.task_roundtrip_s", roundtrip_s)
                        obs_metrics.observe("pool.task_exec_s", bundle.wall_s)
                        obs_metrics.observe(
                            "pool.task_queue_s",
                            max(0.0, roundtrip_s - bundle.wall_s),
                        )
                    else:
                        results[index] = outcome
                # No early exit on ``broken``: the dead executor resolves
                # every future it still holds (with BrokenProcessPool), and
                # futures resubmitted on a fresh executor mid-round finish
                # normally — failing them here would condemn specs that are
                # still running.
            if broken and pool.rebuild_if_broken() and do_capture:
                obs_metrics.count("pool.worker_deaths")
                obs_metrics.count("pool.rebuilds")
            round_broken = round_broken or broken
        isolate = round_broken
        pending = [
            index
            for index in sorted(set(failed))
            if attempts[index] < max_attempts
        ]
        if pending:
            # Only sleep when a retry round actually follows: a spec out of
            # attempts has already produced its RunFailure and waiting
            # would delay the caller for nothing.
            time.sleep(retry_backoff_s * (2**round_index))
            round_index += 1
    if do_capture:
        pool._finish_stage("run.many", started_at, bundles, stats)
    return results


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _run_serial(spec: Any, max_attempts: int, retry_backoff_s: float) -> Any:
    """One spec in-process, with the same bounded retry + backoff.

    The backoff runs between attempts, never after the last one — the
    final failure returns immediately.
    """
    for attempt in range(1, max_attempts + 1):
        try:
            return execute(spec)
        except Exception as error:  # noqa: BLE001
            failure = _failure(spec, error, attempt)
            if attempt < max_attempts:
                time.sleep(retry_backoff_s * (2 ** (attempt - 1)))
    return failure


def _failure(spec: Any, error: BaseException, attempts: int) -> RunFailure:
    return RunFailure(
        spec=spec,
        error_type=type(error).__name__,
        error=str(error) or repr(error),
        attempts=attempts,
    )


def _pool_is_broken(error: BaseException) -> bool:
    """Did this exception take the whole executor down with it?"""
    from concurrent.futures.process import BrokenProcessPool

    return isinstance(error, BrokenProcessPool)
