"""Small-scale test of the power-safety experiment (Sec. 3.2's claim)."""

import pytest

from repro.analysis import experiments as E

SMALL = dict(n_instances=192, step_minutes=30)


@pytest.fixture(scope="module")
def study():
    return E.run_power_safety("DC3", surge_factor=1.3, **SMALL)


class TestPowerSafety:
    def test_both_placements_evaluated(self, study):
        assert set(study.reports) == {"oblivious", "smoothoperator"}

    def test_surge_causes_capping_somewhere(self, study):
        assert study.reports["oblivious"].total_event_steps > 0

    def test_workload_aware_placement_suffers_less_lc_capping(self, study):
        """The paper's safety claim: spreading synchronous instances shares
        the surge, so less latency-critical work gets capped."""
        assert (
            study.reports["smoothoperator"].lc_energy_shed
            <= study.reports["oblivious"].lc_energy_shed
        )

    def test_workload_aware_placement_has_fewer_events(self, study):
        assert (
            study.reports["smoothoperator"].total_event_steps
            <= study.reports["oblivious"].total_event_steps
        )

    def test_helpers(self, study):
        assert study.lc_shed("oblivious") >= study.lc_shed("smoothoperator")
        assert study.event_steps("oblivious") >= 0
