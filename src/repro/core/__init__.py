"""SmoothOperator's core contribution: asynchrony-aware service placement.

Implements Sec. 3 of the paper: asynchrony scores (Eq. 6-7), I-to-S score
vectors, balanced k-means clustering, hierarchical round-robin placement,
differential-score remapping, and the fragmentation metrics of Sec. 2.2.
"""

from .asynchrony import (
    asynchrony_score,
    averaged_group_trace,
    differential_score,
    differential_scores_for_node,
    pairwise_asynchrony,
    score_matrix,
    score_vector,
)
from .clustering import ClusteringResult, balanced_kmeans, kmeans
from .greedy import GreedyConfig, GreedyPeakPlacer
from .optimal import OptimalResult, optimal_leaf_placement
from .metrics import (
    AsynchronyIndex,
    LevelFragmentation,
    fragmentation_report,
    node_asynchrony_scores,
    required_budget,
)
from .pipeline import (
    EvaluationReport,
    OptimizationOutcome,
    SmoothOperator,
    SmoothOperatorConfig,
)
from .placement import PlacementConfig, PlacementResult, WorkloadAwarePlacer, scoped_placement
from .remapping import RemapConfig, RemappingEngine, RemapResult, Swap

__all__ = [
    "scoped_placement",
    "OptimalResult",
    "optimal_leaf_placement",
    "GreedyConfig",
    "GreedyPeakPlacer",
    "asynchrony_score",
    "pairwise_asynchrony",
    "score_vector",
    "score_matrix",
    "averaged_group_trace",
    "differential_score",
    "differential_scores_for_node",
    "kmeans",
    "balanced_kmeans",
    "ClusteringResult",
    "PlacementConfig",
    "PlacementResult",
    "WorkloadAwarePlacer",
    "RemapConfig",
    "RemappingEngine",
    "RemapResult",
    "Swap",
    "AsynchronyIndex",
    "LevelFragmentation",
    "fragmentation_report",
    "node_asynchrony_scores",
    "required_budget",
    "SmoothOperator",
    "SmoothOperatorConfig",
    "OptimizationOutcome",
    "EvaluationReport",
]
