"""StatProf: statistical-profiling-based provisioning (Govindan et al.).

The prior work SmoothOperator compares against in Figure 11 models each
instance's power as a distribution (CDF) and provisions power nodes from
per-instance percentiles rather than time-aligned traces:

* **under-provisioning** ``u`` — a node supplying instance set *M* gets a
  budget of ``Σ_{i∈M} c_{i,u}`` where ``c_{i,u}`` is the ``(100−u)``-th
  percentile of instance *i*'s power profile;
* **overbooking** ``δ`` — the requirement is further divided by ``(1+δ)``,
  banking on the improbability of simultaneous highs.

Because the per-instance percentiles are summed, StatProf's level-total is
*placement independent*; it cannot exploit asynchrony the way
SmoothOperator's time-aligned aggregation does — which is exactly the gap
Figure 11 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from ..infra.aggregation import NodePowerView
from ..infra.assignment import Assignment
from ..traces.traceset import TraceSet

#: The (u, δ) configurations plotted in Figure 11.
FIGURE11_CONFIGS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.0),
    (1.0, 0.01),
    (5.0, 0.05),
    (10.0, 0.10),
)


@dataclass(frozen=True)
class StatProfConfig:
    """One StatProf operating point ``(u, δ)``."""

    under_provision: float = 0.0
    overbooking: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.under_provision < 100:
            raise ValueError("under_provision must be in [0, 100)")
        if self.overbooking < 0:
            raise ValueError("overbooking cannot be negative")

    @property
    def label(self) -> str:
        return f"StatProf({self.under_provision:g}, {self.overbooking:g})"


def instance_provisions(traces: TraceSet, under_provision: float) -> np.ndarray:
    """``c_{i,u}`` for every instance: its ``(100−u)``-th percentile power."""
    if not 0 <= under_provision < 100:
        raise ValueError("under_provision must be in [0, 100)")
    q = 100.0 - under_provision
    return np.percentile(traces.matrix, q, axis=1)


def statprof_node_budget(
    member_ids: Sequence[str], traces: TraceSet, config: StatProfConfig
) -> float:
    """Budget StatProf assigns a node supplying ``member_ids``."""
    if not member_ids:
        return 0.0
    q = 100.0 - config.under_provision
    total = 0.0
    for instance_id in member_ids:
        total += float(np.percentile(traces.row(instance_id), q))
    return total / (1.0 + config.overbooking)


def statprof_required_budget(
    assignment: Assignment, traces: TraceSet, level: str, config: StatProfConfig
) -> float:
    """Total StatProf provisioning requirement at one level of the tree.

    Since per-instance percentiles sum, the result equals
    ``Σ_i c_{i,u} / (1+δ)`` regardless of how the level partitions the
    fleet — StatProf is placement-blind by construction.
    """
    provisions = instance_provisions(traces, config.under_provision)
    by_id = dict(zip(traces.ids, provisions))
    total = 0.0
    for node in assignment.topology.nodes_at_level(level):
        for instance_id in assignment.instances_under(node.name):
            total += by_id[instance_id]
    return total / (1.0 + config.overbooking)


def smoothoperator_required_budget(
    view: NodePowerView, level: str, config: StatProfConfig
) -> float:
    """The SmoOp(u, δ) counterpart: per-node *aggregate-trace* percentiles.

    SmoothOperator applies under-provisioning to the node's time-aligned
    aggregate (which already cancels asynchronous peaks) and the same
    overbooking discount.
    """
    q = 100.0 - config.under_provision
    total = 0.0
    for node in view.topology.nodes_at_level(level):
        total += view.node_percentile(node.name, q)
    return total / (1.0 + config.overbooking)


def provisioning_comparison(
    assignment: Assignment,
    view: NodePowerView,
    traces: TraceSet,
    *,
    configs: Iterable[Tuple[float, float]] = FIGURE11_CONFIGS,
) -> Dict[str, Dict[str, float]]:
    """Figure 11's full grid for one datacenter.

    Returns ``{level: {"StatProf(u, d)": budget, "SmoOp(u, d)": budget}}``,
    with budgets normalised to the naive requirement ``Σ_i peak_i`` (the sum
    of every instance's peak — what peak-provisioning each instance
    individually would demand).
    """
    naive = float(traces.peaks().sum())
    if naive <= 0:
        raise ValueError("fleet has zero power; nothing to compare")
    result: Dict[str, Dict[str, float]] = {}
    for level in assignment.topology.levels():
        row: Dict[str, float] = {}
        for u, delta in configs:
            config = StatProfConfig(under_provision=u, overbooking=delta)
            row[config.label] = (
                statprof_required_budget(assignment, traces, level, config) / naive
            )
            smoop_label = f"SmoOp({u:g}, {delta:g})"
            row[smoop_label] = (
                smoothoperator_required_budget(view, level, config) / naive
            )
        result[level] = row
    return result
