"""Greedy marginal-peak placement — an algorithmic alternative to Sec. 3.5.

Instead of clustering + round-robin, assign instances one at a time (in
descending peak order) to whichever leaf *increases its local aggregate
peak the least*, subject to capacity and an occupancy-balance constraint.
This is the natural "online bin-packing" formulation of the problem and a
strong ablation point for the paper's clustering-based design: greedy is
O(n × leaves × T) and needs no basis traces, but it is myopic — it cannot
coordinate spreading a synchronous cohort, which is exactly what the
cluster-deal achieves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..infra.assignment import Assignment, AssignmentError
from ..infra.topology import PowerTopology
from ..traces.instance import InstanceRecord


@dataclass(frozen=True)
class GreedyConfig:
    """Tuning for the greedy placer.

    ``balance_slack`` bounds how uneven leaf occupancy may get: a leaf may
    only receive an instance if its occupancy is within ``balance_slack``
    of the least-occupied eligible leaf.  0 forces strict round-robin-like
    balance; larger values let the peak objective dominate.
    """

    balance_slack: int = 1

    def __post_init__(self) -> None:
        if self.balance_slack < 0:
            raise ValueError("balance_slack cannot be negative")


class GreedyPeakPlacer:
    """Place each instance where it adds least to the local peak."""

    def __init__(self, config: Optional[GreedyConfig] = None) -> None:
        self.config = config if config is not None else GreedyConfig()

    def place(
        self, records: Sequence[InstanceRecord], topology: PowerTopology
    ) -> Assignment:
        if not records:
            raise ValueError("nothing to place")
        leaves = topology.leaves()
        capacity_total = topology.total_leaf_capacity()
        if capacity_total is not None and len(records) > capacity_total:
            raise AssignmentError(
                f"{len(records)} instances exceed total capacity {capacity_total}"
            )

        grid = records[0].training_trace.grid
        n_samples = grid.n_samples
        leaf_values = {leaf.name: np.zeros(n_samples) for leaf in leaves}
        leaf_peak = {leaf.name: 0.0 for leaf in leaves}
        occupancy = {leaf.name: 0 for leaf in leaves}
        mapping: Dict[str, str] = {}

        # Heaviest instances first: they constrain the packing the most.
        ordered = sorted(
            records, key=lambda r: (-r.training_trace.peak(), r.instance_id)
        )
        for record in ordered:
            grid.require_same(record.training_trace.grid)
            values = record.training_trace.values
            eligible = [
                leaf
                for leaf in leaves
                if leaf.capacity is None or occupancy[leaf.name] < leaf.capacity
            ]
            if not eligible:
                raise AssignmentError("ran out of leaf capacity")
            min_occupancy = min(occupancy[leaf.name] for leaf in eligible)
            candidates = [
                leaf
                for leaf in eligible
                if occupancy[leaf.name] <= min_occupancy + self.config.balance_slack
            ]
            best_leaf = None
            best_delta = None
            for leaf in candidates:
                new_peak = float((leaf_values[leaf.name] + values).max())
                delta = new_peak - leaf_peak[leaf.name]
                if best_delta is None or delta < best_delta - 1e-12:
                    best_delta = delta
                    best_leaf = leaf
            assert best_leaf is not None
            name = best_leaf.name
            leaf_values[name] += values
            leaf_peak[name] = float(leaf_values[name].max())
            occupancy[name] += 1
            mapping[record.instance_id] = name

        return Assignment(topology, mapping)
