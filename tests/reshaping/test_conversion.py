"""Unit tests for the conversion policy's phase detection."""

import numpy as np
import pytest

from repro.reshaping import ConversionPolicy
from repro.sim import DemandTrace
from repro.traces import TimeGrid


@pytest.fixture
def grid():
    return TimeGrid(0, 60, 48)


class TestValidation:
    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            ConversionPolicy(conversion_threshold=0.0)
        with pytest.raises(ValueError):
            ConversionPolicy(conversion_threshold=1.2)

    def test_trigger_bounds(self):
        with pytest.raises(ValueError):
            ConversionPolicy(conversion_threshold=0.8, trigger_fraction=0.0)

    def test_negative_cap(self):
        with pytest.raises(ValueError):
            ConversionPolicy(
                conversion_threshold=0.8, max_batch_conversion_fraction=-0.1
            )


class TestPhases:
    def test_lc_heavy_at_peak(self, grid):
        policy = ConversionPolicy(conversion_threshold=0.8, trigger_fraction=1.0)
        demand = DemandTrace(grid, np.concatenate([np.full(24, 2.0), np.full(24, 9.0)]))
        mask = policy.lc_heavy_mask(demand, n_lc_original=10)
        assert not mask[:24].any()
        assert mask[24:].all()

    def test_trigger_fraction_fires_earlier(self, grid):
        demand = DemandTrace(grid, np.linspace(0, 8, 48))
        strict = ConversionPolicy(conversion_threshold=0.8, trigger_fraction=1.0)
        eager = ConversionPolicy(conversion_threshold=0.8, trigger_fraction=0.8)
        assert eager.lc_heavy_mask(demand, 10).sum() > strict.lc_heavy_mask(
            demand, 10
        ).sum()

    def test_phase_fractions_sum_to_one(self, grid):
        policy = ConversionPolicy(conversion_threshold=0.8)
        demand = DemandTrace(grid, np.linspace(0, 10, 48))
        fractions = policy.phase_fractions(demand, 10)
        assert fractions["lc_heavy"] + fractions["batch_heavy"] == pytest.approx(1.0)

    def test_requires_positive_fleet(self, grid):
        policy = ConversionPolicy(conversion_threshold=0.8)
        demand = DemandTrace(grid, np.ones(48))
        with pytest.raises(ValueError):
            policy.lc_heavy_mask(demand, 0)


class TestBatchConvertible:
    def test_cap_binds(self):
        policy = ConversionPolicy(
            conversion_threshold=0.8, max_batch_conversion_fraction=0.1
        )
        assert policy.batch_convertible(100, 200) == 20

    def test_extra_binds(self):
        policy = ConversionPolicy(
            conversion_threshold=0.8, max_batch_conversion_fraction=0.5
        )
        assert policy.batch_convertible(10, 200) == 10

    def test_unbounded(self):
        policy = ConversionPolicy(
            conversion_threshold=0.8, max_batch_conversion_fraction=None
        )
        assert policy.batch_convertible(100, 10) == 100

    def test_negative_rejected(self):
        policy = ConversionPolicy(conversion_threshold=0.8)
        with pytest.raises(ValueError):
            policy.batch_convertible(-1, 10)
