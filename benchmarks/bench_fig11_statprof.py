"""Figure 11: required power budget vs StatProf(u, δ) at every level.

Paper: SmoOp(0,0) achieves >12% provisioning reduction everywhere, nearly
always beats even StatProf(10, 0.1), and SmoOp(u, δ) always needs less than
the StatProf(u, δ) counterpart.  In DC3: StatProf(10,0.1) -13%, SmoOp(0,0)
-20%, SmoOp(10,0.1) -24%.
"""

import pytest

from repro.analysis import experiments as E
from repro.analysis.report import format_table
from repro.baselines import FIGURE11_CONFIGS
from repro.infra import Level

LEVELS = [Level.DATACENTER, Level.SUITE, Level.MSB, Level.SB, Level.RPP]


def _run(full_scale):
    return {name: E.run_figure11(name, **full_scale) for name in E.DATACENTER_NAMES}


@pytest.mark.benchmark(group="figure11")
def test_fig11_statprof(benchmark, emit_report, full_scale):
    grids = benchmark.pedantic(_run, args=(full_scale,), rounds=1, iterations=1)

    blocks = []
    labels = []
    for u, d in FIGURE11_CONFIGS:
        labels += [f"StatProf({u:g}, {d:g})", f"SmoOp({u:g}, {d:g})"]
    for name, grid in grids.items():
        rows = [
            [level] + [f"{grid[level][label]:.3f}" for label in labels]
            for level in LEVELS
        ]
        blocks.append(
            format_table(
                ["level"] + labels,
                rows,
                title=f"Figure 11 — normalised required budget, {name}",
            )
        )
    emit_report("fig11_statprof", "\n\n".join(blocks))

    for name, grid in grids.items():
        for level in LEVELS:
            row = grid[level]
            # SmoOp(u, δ) always requires less than StatProf(u, δ).
            for u, d in FIGURE11_CONFIGS:
                assert row[f"SmoOp({u:g}, {d:g})"] <= row[f"StatProf({u:g}, {d:g})"] + 1e-9
    # SmoOp(0,0) achieves a >=8% reduction at the DC level in every DC
    # (paper: >12% across its production fleets).
    for name, grid in grids.items():
        assert grid[Level.DATACENTER]["SmoOp(0, 0)"] < 0.92
    # DC3: SmoOp(0,0) beats the most aggressive StatProf, as in the paper.
    dc3_rpp = grids["DC3"][Level.RPP]
    assert dc3_rpp["SmoOp(0, 0)"] <= dc3_rpp["StatProf(10, 0.1)"] + 0.02
