"""Unit tests for the greedy marginal-peak placer."""

import pytest

from repro.baselines import oblivious_placement
from repro.core import GreedyConfig, GreedyPeakPlacer
from repro.infra import AssignmentError, Level, NodePowerView, build_topology, two_level_spec
from repro.traces import training_trace_set


class TestConfig:
    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            GreedyConfig(balance_slack=-1)


class TestGreedyPlacement:
    def test_places_everything(self, tiny_records, tiny_topology):
        assignment = GreedyPeakPlacer().place(tiny_records, tiny_topology)
        assert len(assignment) == len(tiny_records)

    def test_respects_capacity(self, tiny_records, tiny_topology):
        assignment = GreedyPeakPlacer().place(tiny_records, tiny_topology)
        for leaf in tiny_topology.leaves():
            assert len(assignment.instances_on_leaf(leaf.name)) <= leaf.capacity

    def test_occupancy_balanced(self, tiny_records, tiny_topology):
        assignment = GreedyPeakPlacer(GreedyConfig(balance_slack=1)).place(
            tiny_records, tiny_topology
        )
        occupancy = list(assignment.occupancy().values())
        assert max(occupancy) - min(occupancy) <= 2

    def test_beats_oblivious(self, tiny_records, tiny_topology):
        traces = training_trace_set(tiny_records)
        greedy = GreedyPeakPlacer().place(tiny_records, tiny_topology)
        grouped = oblivious_placement(tiny_records, tiny_topology)
        g = NodePowerView(tiny_topology, greedy, traces).sum_of_peaks(Level.RACK)
        o = NodePowerView(tiny_topology, grouped, traces).sum_of_peaks(Level.RACK)
        assert g < o

    def test_determinism(self, tiny_records, tiny_topology):
        a = GreedyPeakPlacer().place(tiny_records, tiny_topology).as_mapping()
        b = GreedyPeakPlacer().place(tiny_records, tiny_topology).as_mapping()
        assert a == b

    def test_empty_rejected(self, tiny_topology):
        with pytest.raises(ValueError):
            GreedyPeakPlacer().place([], tiny_topology)

    def test_overflow_rejected(self, synthesizer):
        from repro.traces import web_profile

        records = synthesizer.service_instances(web_profile(), 12)
        topo = build_topology(two_level_spec("s", leaves=2, leaf_capacity=5))
        with pytest.raises(AssignmentError):
            GreedyPeakPlacer().place(records, topo)

    def test_anti_phase_pairing(self, synthesizer):
        """Greedy pairs anti-phase instances on the same leaf (Figure 3)."""
        from repro.traces import db_profile, web_profile

        records = synthesizer.fleet(
            [(web_profile(), 2), (db_profile(), 2)], test_weeks=1
        )
        topo = build_topology(two_level_spec("toy", leaves=2, leaf_capacity=2))
        assignment = GreedyPeakPlacer().place(records, topo)
        for leaf in topo.leaves():
            services = {
                r.service
                for r in records
                if assignment.leaf_of(r.instance_id) == leaf.name
            }
            assert services == {"web", "db"}
