"""Unit tests for LC demand models."""

import numpy as np
import pytest

from repro.sim import DemandTrace, demand_at_target_load, demand_from_power
from repro.traces import PowerTrace, TimeGrid


@pytest.fixture
def grid():
    return TimeGrid(0, 60, 24)


class TestDemandTrace:
    def test_validation(self, grid):
        with pytest.raises(ValueError):
            DemandTrace(grid, np.ones(10))
        with pytest.raises(ValueError):
            DemandTrace(grid, -np.ones(24))

    def test_peak(self, grid):
        demand = DemandTrace(grid, np.linspace(0, 8, 24))
        assert demand.peak() == pytest.approx(8.0)

    def test_scaled(self, grid):
        demand = DemandTrace(grid, np.ones(24))
        assert demand.scaled(1.5).peak() == pytest.approx(1.5)

    def test_scaled_negative_rejected(self, grid):
        with pytest.raises(ValueError):
            DemandTrace(grid, np.ones(24)).scaled(-1)

    def test_per_server_load(self, grid):
        demand = DemandTrace(grid, np.full(24, 10.0))
        assert np.allclose(demand.per_server_load(20), 0.5)

    def test_per_server_load_requires_servers(self, grid):
        with pytest.raises(ValueError):
            DemandTrace(grid, np.ones(24)).per_server_load(0)


class TestDemandFromPower:
    def test_linear_inversion(self, grid):
        # 10 servers, 100 W idle each, 100 W swing; 5 fully-loaded-servers
        # of work -> 1000 + 500 W.
        power = PowerTrace.constant(grid, 1500.0)
        demand = demand_from_power(
            power, idle_watts_total=1000.0, swing_watts_per_server=100.0
        )
        assert np.allclose(demand.values, 5.0)

    def test_clamps_below_idle(self, grid):
        power = PowerTrace.constant(grid, 500.0)
        demand = demand_from_power(
            power, idle_watts_total=1000.0, swing_watts_per_server=100.0
        )
        assert np.allclose(demand.values, 0.0)

    def test_validation(self, grid):
        power = PowerTrace.constant(grid, 1.0)
        with pytest.raises(ValueError):
            demand_from_power(power, idle_watts_total=-1, swing_watts_per_server=1)
        with pytest.raises(ValueError):
            demand_from_power(power, idle_watts_total=0, swing_watts_per_server=0)


class TestDemandAtTargetLoad:
    def test_peak_load_calibration(self, grid):
        power = PowerTrace(grid, 100 + 100 * np.sin(np.linspace(0, np.pi, 24)))
        demand = demand_at_target_load(power, n_servers=10, peak_load=0.8)
        assert demand.peak() == pytest.approx(8.0)

    def test_preserves_shape(self, grid):
        values = 100 + 100 * np.sin(np.linspace(0, np.pi, 24))
        power = PowerTrace(grid, values)
        demand = demand_at_target_load(power, n_servers=10, peak_load=0.8)
        assert np.allclose(
            demand.values / demand.peak(), values / values.max()
        )

    def test_dead_signal(self, grid):
        demand = demand_at_target_load(
            PowerTrace.zeros(grid), n_servers=4, peak_load=0.5
        )
        assert np.allclose(demand.values, 2.0)

    def test_validation(self, grid):
        power = PowerTrace.constant(grid, 1.0)
        with pytest.raises(ValueError):
            demand_at_target_load(power, n_servers=0)
        with pytest.raises(ValueError):
            demand_at_target_load(power, n_servers=5, peak_load=1.5)
