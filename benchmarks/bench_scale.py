"""Fleet-scale scaling benchmark → ``BENCH_scale.json``.

Synthesizes a 100k-instance fleet (``BENCH_SCALE_INSTANCES`` overrides; the
harness is sized for 100k–1M) directly as one float32 trace matrix — no
Python-level per-instance objects — then times the hot stages the
persistent worker pool is supposed to accelerate:

* ``synthesize``  — vectorized diurnal + phase + noise fleet construction;
* ``aggregate``   — the asynchrony numerator/denominator over the whole
  fleet (per-row peaks and the aggregate-trace peak);
* ``score_serial``   — the I-to-S score matrix in one process;
* ``score_parallel`` — the same scores sharded across the persistent pool
  over shared-memory views (:mod:`repro.engine.sharedmem`).

Scores are row-independent, so serial and parallel results must be
*identical* — asserted every run.  The scaling gate (parallel efficiency
``speedup / workers >= 0.7``) only applies on multi-CPU hosts;
single-CPU runners record the numbers and skip the assertion, and
``tools/bench_compare.py`` applies the same rule to the emitted document.

Three observability sections ride along in ``BENCH_scale.json``:

* ``run_report`` — the parallel pass's per-worker imbalance and
  utilization harvested from the unified run report
  (:mod:`repro.obs.report`), so BENCH documents carry the *shape* of the
  parallel stage, not just its wall time.  The full report is also
  written to ``run_report.json`` at the repo root for CI artifact upload;
* ``capture`` — the same parallel pass timed again with
  ``REPRO_OBS_CAPTURE=0``, recording worker-telemetry capture overhead as
  a fraction.  ``tools/bench_compare.py`` gates it at 5% on multi-CPU
  runners;
* ``recovery`` — the same pass once more under an armed (but never
  firing) :class:`repro.engine.deadline.TaskDeadline`, recording the
  failure-domain layer's fault-free overhead (watchdog polling +
  straggler bookkeeping).  ``tools/bench_compare.py`` gates it at 3% on
  multi-CPU runners.
"""

import os
import time

import numpy as np
import pytest

from repro import obs
from repro.core.asynchrony import score_matrix
from repro.engine import warm_pool
from repro.engine.deadline import TaskDeadline, deadline_scope
from repro.traces.grid import TimeGrid
from repro.traces.traceset import TraceSet

N_INSTANCES = int(os.environ.get("BENCH_SCALE_INSTANCES", "100000"))
STEP_MINUTES = 60
N_BASIS = 8
SEED = 0
MIN_EFFICIENCY = 0.7
MAX_CAPTURE_OVERHEAD = 0.05
MAX_RECOVERY_OVERHEAD = 0.03

CPU_COUNT = os.cpu_count() or 1
WORKERS = int(os.environ.get("BENCH_SCALE_WORKERS", "0")) or min(
    4, max(2, CPU_COUNT)
)


def _synthesize(n_instances: int, grid: TimeGrid, rng: np.random.Generator) -> TraceSet:
    """A seeded synthetic fleet: diurnal base + per-instance phase + noise.

    Built as one vectorized float32 matrix — at 1M instances a row-by-row
    Python loop would dominate the benchmark it is meant to feed.
    """
    minutes = grid.start_minute + np.arange(grid.n_samples) * grid.step_minutes
    hours = (minutes / 60.0) % 24.0
    phase = rng.uniform(0.0, 24.0, size=n_instances).astype(np.float32)
    amplitude = rng.uniform(0.2, 0.6, size=n_instances).astype(np.float32)
    base = rng.uniform(0.5, 1.0, size=n_instances).astype(np.float32)
    angle = (
        (hours[np.newaxis, :].astype(np.float32) - phase[:, np.newaxis])
        * np.float32(2.0 * np.pi / 24.0)
    )
    matrix = base[:, np.newaxis] + amplitude[:, np.newaxis] * np.sin(angle)
    matrix += rng.normal(0.0, 0.02, size=matrix.shape).astype(np.float32)
    np.maximum(matrix, 0.0, out=matrix)
    ids = [f"i{i}" for i in range(n_instances)]
    return TraceSet(grid, ids, matrix, dtype=np.float32)


def _run():
    rng = np.random.default_rng(SEED)
    grid = TimeGrid(0, STEP_MINUTES, 7 * 24 * 60 // STEP_MINUTES)

    walls = {}
    started = time.perf_counter()
    instances = _synthesize(N_INSTANCES, grid, rng)
    basis = _synthesize(N_BASIS, grid, rng)
    walls["synthesize"] = time.perf_counter() - started

    started = time.perf_counter()
    sum_of_peaks = instances.sum_of_peaks()
    aggregate_peak = instances.aggregate_peak()
    walls["aggregate"] = time.perf_counter() - started
    assert sum_of_peaks >= aggregate_peak > 0

    started = time.perf_counter()
    serial = score_matrix(instances, basis, dtype=np.float32)
    walls["score_serial"] = time.perf_counter() - started

    # Spawn the workers outside the timed region: the committed cost of a
    # persistent pool is paid once per process, not once per batch.
    warm_pool(WORKERS)
    obs.reset_report()
    started = time.perf_counter()
    parallel = score_matrix(instances, basis, dtype=np.float32, workers=WORKERS)
    walls["score_parallel"] = time.perf_counter() - started

    # Harvest the parallel stage's shape (imbalance, per-worker economics)
    # from the unified run report while it covers exactly this pass.
    report = obs.build_report(include_spans=False)
    stage = report["stages"][-1] if report["stages"] else None

    # Time the identical pass with worker-telemetry capture disabled to
    # measure capture overhead.  Running it second hands it every warm
    # cache the captured pass built, so the measured overhead is an upper
    # bound on the true cost.
    saved = os.environ.get("REPRO_OBS_CAPTURE")
    os.environ["REPRO_OBS_CAPTURE"] = "0"
    try:
        started = time.perf_counter()
        bare = score_matrix(instances, basis, dtype=np.float32, workers=WORKERS)
        walls["score_parallel_nocapture"] = time.perf_counter() - started
    finally:
        if saved is None:
            os.environ.pop("REPRO_OBS_CAPTURE", None)
        else:
            os.environ["REPRO_OBS_CAPTURE"] = saved

    # The identical pass again with the failure-domain layer armed (hard
    # deadlines generous enough to never fire on a healthy run): measures
    # the watchdog's polling overhead on the fault-free path.
    with deadline_scope(TaskDeadline(soft_timeout_s=60.0, hard_timeout_s=120.0)):
        started = time.perf_counter()
        guarded = score_matrix(instances, basis, dtype=np.float32, workers=WORKERS)
        walls["score_parallel_deadline"] = time.perf_counter() - started

    return walls, serial, parallel, bare, guarded, stage


@pytest.mark.benchmark(group="scale")
def test_fleet_scale_scaling(benchmark, emit_report):
    walls, serial, parallel, bare, guarded, stage = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    # Worker count must not change a single score bit — and neither may
    # the telemetry kill switch or the failure-domain layer.
    assert np.array_equal(serial, parallel)
    assert np.array_equal(parallel, bare)
    assert np.array_equal(parallel, guarded)

    speedup = (
        walls["score_serial"] / walls["score_parallel"]
        if walls["score_parallel"] > 0
        else float("inf")
    )
    efficiency = speedup / WORKERS
    capture_overhead = (
        walls["score_parallel"] / walls["score_parallel_nocapture"] - 1.0
        if walls["score_parallel_nocapture"] > 0
        else 0.0
    )
    recovery_overhead = (
        walls["score_parallel_deadline"] / walls["score_parallel"] - 1.0
        if walls["score_parallel"] > 0
        else 0.0
    )

    obs.update_bench(
        "scale",
        "workload",
        {
            "n_instances": N_INSTANCES,
            "n_samples": 7 * 24 * 60 // STEP_MINUTES,
            "step_minutes": STEP_MINUTES,
            "n_basis": N_BASIS,
            "dtype": "float32",
            "seed": SEED,
        },
    )
    obs.update_bench(
        "scale",
        "stages",
        [
            {"stage": stage, "wall_s": wall, "calls": 1}
            for stage, wall in walls.items()
        ],
    )
    obs.update_bench(
        "scale",
        "scaling",
        {
            "workers": WORKERS,
            "cpu_count": CPU_COUNT,
            "serial_wall_s": walls["score_serial"],
            "parallel_wall_s": walls["score_parallel"],
            "speedup": speedup,
            "efficiency": efficiency,
            "min_efficiency": MIN_EFFICIENCY,
        },
    )
    obs.update_bench(
        "scale",
        "run_report",
        {
            "stage": stage["label"] if stage else None,
            "imbalance": stage["imbalance"] if stage else None,
            "mean_exec_s": stage["mean_exec_s"] if stage else None,
            "max_exec_s": stage["max_exec_s"] if stage else None,
            "mean_queue_s": stage["mean_queue_s"] if stage else None,
            "per_worker": stage["per_worker"] if stage else {},
        },
    )
    obs.update_bench(
        "scale",
        "capture",
        {
            "workers": WORKERS,
            "cpu_count": CPU_COUNT,
            "capture_wall_s": walls["score_parallel"],
            "no_capture_wall_s": walls["score_parallel_nocapture"],
            "overhead_frac": capture_overhead,
            "max_overhead_frac": MAX_CAPTURE_OVERHEAD,
        },
    )
    obs.update_bench(
        "scale",
        "recovery",
        {
            "workers": WORKERS,
            "cpu_count": CPU_COUNT,
            "guarded_wall_s": walls["score_parallel_deadline"],
            "bare_wall_s": walls["score_parallel"],
            "overhead_frac": recovery_overhead,
            "max_overhead_frac": MAX_RECOVERY_OVERHEAD,
        },
    )
    # The full report goes to the repo root so CI uploads it with the
    # BENCH documents (bench-diff artifact).
    obs.write_report(obs.bench_path("scale").parent / "run_report.json")

    emit_report(
        "scale",
        "\n".join(
            [
                "fleet-scale scoring: serial vs shared-memory pool",
                f"  instances         {N_INSTANCES}",
                f"  basis traces      {N_BASIS}",
                f"  workers           {WORKERS} (host cpus: {CPU_COUNT})",
                f"  synthesize        {walls['synthesize']:.3f}s",
                f"  aggregate         {walls['aggregate']:.3f}s",
                f"  score serial      {walls['score_serial']:.3f}s",
                f"  score parallel    {walls['score_parallel']:.3f}s",
                f"  score no-capture  {walls['score_parallel_nocapture']:.3f}s",
                f"  score deadline    {walls['score_parallel_deadline']:.3f}s",
                f"  capture overhead  {capture_overhead:+.1%}"
                f" (limit {MAX_CAPTURE_OVERHEAD:.0%})",
                f"  recovery overhead {recovery_overhead:+.1%}"
                f" (limit {MAX_RECOVERY_OVERHEAD:.0%})",
                f"  shard imbalance   "
                + (f"{stage['imbalance']:.2f}x" if stage else "-"),
                f"  speedup           {speedup:.2f}x",
                f"  efficiency        {efficiency:.2f} (target {MIN_EFFICIENCY})",
            ]
        ),
    )

    # Near-linear scaling gate — only meaningful when the host actually
    # has the cores (bench_compare applies the identical rule).
    if CPU_COUNT >= 2:
        assert efficiency >= MIN_EFFICIENCY, (
            f"parallel scoring efficiency {efficiency:.2f} below "
            f"{MIN_EFFICIENCY} at {WORKERS} workers"
        )
