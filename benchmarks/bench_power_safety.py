"""Power safety under bursty traffic (Sec. 3.2's claim, quantified).

Paper (Sec. 3.2): "When bursty traffic arrives, the sudden load change is
now shared among all the power nodes.  Such load sharing ... decreases the
likelihood of tripping the circuit breakers inside certain heavily-loaded
power nodes."  The paper states this; it does not plot it.  This benchmark
measures it: a daily LC traffic surge is injected into the held-out week
and the Dynamo-style capping loop is run under both placements.
"""

import pytest

from repro.analysis import experiments as E
from repro.analysis.report import format_table


def _run(full_scale):
    return E.run_power_safety("DC3", surge_factor=1.25, **full_scale)


@pytest.mark.benchmark(group="power-safety")
def test_power_safety(benchmark, emit_report, full_scale):
    study = benchmark.pedantic(_run, args=(full_scale,), rounds=1, iterations=1)

    rows = []
    for label in ("oblivious", "smoothoperator"):
        report = study.reports[label]
        rows.append(
            [
                label,
                report.total_event_steps,
                f"{report.lc_energy_shed / 1e3:.0f}",
                f"{report.batch_energy_shed / 1e3:.0f}",
                report.residual_overload_steps,
            ]
        )
    table = format_table(
        [
            "placement",
            "capping events (node-steps)",
            "LC energy shed (kW-min)",
            "batch energy shed (kW-min)",
            "residual overload steps",
        ],
        rows,
        title=(
            f"Power safety — {study.surge_factor:.2f}x LC surge, 12:00-16:00 "
            f"daily ({study.datacenter.name}, test week)"
        ),
    )
    emit_report("power_safety", table)

    oblivious = study.reports["oblivious"]
    smoop = study.reports["smoothoperator"]
    # The claim: the workload-aware placement needs much less LC capping
    # (QoS damage) and fewer capping events overall.
    assert smoop.lc_energy_shed < oblivious.lc_energy_shed * 0.5
    assert smoop.total_event_steps < oblivious.total_event_steps


def _run_faulted(full_scale):
    """The same surge protocol, but the capping loop sees telemetry that was
    faulted and then repaired — measuring what dirty sensors cost safety."""
    from repro.faults.inject import (
        FaultPlan,
        PowerSpike,
        SensorDropout,
        StuckSensor,
        dirty_copy,
    )
    from repro.faults.repair import repair_telemetry
    from repro.infra.budget import provision_hierarchical
    from repro.infra.aggregation import NodePowerView
    from repro.infra.capping import CappingSimulator
    from repro.traces.instance import ServiceKind
    from repro.traces.perturbations import inject_surge

    dc = E.get_datacenter("DC3", **full_scale)
    study = E.run_placement_study(dc)
    test = dc.test_traces()
    provision_hierarchical(
        NodePowerView(dc.topology, dc.baseline, test), margin=0.03
    )
    lc_ids = [
        r.instance_id for r in dc.records if r.kind == ServiceKind.LATENCY_CRITICAL
    ]
    surged = inject_surge(test, lc_ids, factor=1.25, start_hour=12.0, end_hour=16.0)
    kinds = {r.instance_id: r.kind for r in dc.records}

    plan = FaultPlan(
        faults=(
            SensorDropout(fraction_of_traces=0.25, gaps_per_trace=2),
            StuckSensor(fraction_of_traces=0.2),
            PowerSpike(fraction_of_traces=0.5, spikes_per_trace=3),
        ),
        seed=42,
    )
    repaired = repair_telemetry(
        dirty_copy(surged, plan), target_grid=surged.grid
    ).traces

    assignment = study.optimized.assignment
    reports = {
        "clean telemetry": CappingSimulator(
            dc.topology, assignment, surged, kinds
        ).run(),
        "faulted+repaired": CappingSimulator(
            dc.topology, assignment, repaired, kinds
        ).run(),
    }
    return reports


@pytest.mark.benchmark(group="power-safety")
def test_power_safety_faulted_telemetry(benchmark, emit_report, full_scale):
    reports = benchmark.pedantic(_run_faulted, args=(full_scale,), rounds=1, iterations=1)

    rows = [
        [
            label,
            report.total_event_steps,
            f"{report.lc_energy_shed / 1e3:.0f}",
            f"{report.batch_energy_shed / 1e3:.0f}",
            report.residual_overload_steps,
        ]
        for label, report in reports.items()
    ]
    table = format_table(
        [
            "telemetry",
            "capping events (node-steps)",
            "LC energy shed (kW-min)",
            "batch energy shed (kW-min)",
            "residual overload steps",
        ],
        rows,
        title=(
            "Power safety, clean vs faulted telemetry "
            "(DC3, SmoothOperator placement, 1.25x LC surge)"
        ),
    )
    emit_report("power_safety_faulted", table)

    clean = reports["clean telemetry"]
    faulted = reports["faulted+repaired"]
    # Repair must keep the safety picture close to the clean one: spikes are
    # removed rather than amplified, so capping work stays within ~25% and
    # no new class of damage (deep LC capping) appears.
    assert faulted.total_event_steps <= max(clean.total_event_steps * 1.25, 10)
    assert faulted.total_energy_shed <= max(clean.total_energy_shed * 1.25, 1e4)
