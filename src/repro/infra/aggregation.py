"""Power aggregation over the tree: per-node traces, peaks, fragmentation.

Given a topology, a placement, and the fleet's traces, a
:class:`NodePowerView` computes the aggregate power trace at every node
bottom-up (each node's trace is the sum of its children's).  All of the
paper's fragmentation metrics — per-level sums of peaks (Sec. 2.2 metric 1),
power/energy slack (metric 2) — read off this view.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..traces.series import PowerTrace
from ..traces.traceset import TraceSet
from .assignment import Assignment
from .topology import PowerNode, PowerTopology


class NodePowerView:
    """Aggregate power at every node of a tree under one placement."""

    def __init__(
        self,
        topology: PowerTopology,
        assignment: Assignment,
        traces: TraceSet,
    ) -> None:
        if assignment.topology is not topology:
            # Allow equal-but-distinct topologies only if node names agree.
            theirs = {n.name for n in assignment.topology.nodes()}
            ours = {n.name for n in topology.nodes()}
            if theirs != ours:
                raise ValueError("assignment refers to a different topology")
        missing = [i for i in assignment.instance_ids() if i not in traces]
        if missing:
            raise ValueError(f"assignment places instances without traces: {missing[:5]}")
        self.topology = topology
        self.assignment = assignment
        self.traces = traces
        self._node_values: Dict[str, np.ndarray] = {}
        self._aggregate(topology.root)

    def _aggregate(self, node: PowerNode) -> np.ndarray:
        if node.is_leaf:
            members = self.assignment.instances_on_leaf(node.name)
            if members:
                # Fancy-index the TraceSet matrix and reduce once — far
                # fewer Python-level passes than adding row by row.
                rows = [self.traces.index_of(i) for i in members]
                total = self.traces.matrix[rows].sum(axis=0)
            else:
                total = np.zeros(self.traces.grid.n_samples)
        else:
            total = np.sum(
                [self._aggregate(child) for child in node.children], axis=0
            )
        self._node_values[node.name] = total
        return total

    # ------------------------------------------------------------------
    def node_trace(self, node_name: str) -> PowerTrace:
        self.topology.node(node_name)  # validate
        return PowerTrace(self.traces.grid, self._node_values[node_name].copy())

    def node_peak(self, node_name: str) -> float:
        self.topology.node(node_name)
        return float(self._node_values[node_name].max())

    def node_mean(self, node_name: str) -> float:
        self.topology.node(node_name)
        return float(self._node_values[node_name].mean())

    # ------------------------------------------------------------------
    # fragmentation metrics (Sec. 2.2)
    # ------------------------------------------------------------------
    def peaks_at_level(self, level: str) -> Dict[str, float]:
        return {
            node.name: float(self._node_values[node.name].max())
            for node in self.topology.nodes_at_level(level)
        }

    def sum_of_peaks(self, level: str) -> float:
        """Σ over level nodes of each node's aggregate peak — metric 1."""
        return float(sum(self.peaks_at_level(level).values()))

    def sum_of_peaks_by_level(self) -> Dict[str, float]:
        return {level: self.sum_of_peaks(level) for level in self.topology.levels()}

    def node_percentile(self, node_name: str, q: float) -> float:
        """The ``q``-th percentile of the node's aggregate trace."""
        self.topology.node(node_name)
        return float(np.percentile(self._node_values[node_name], q))

    # ------------------------------------------------------------------
    # slack metrics (Sec. 2.2 Eq. 1-2; requires budgets on nodes)
    # ------------------------------------------------------------------
    def power_slack(self, node_name: str) -> np.ndarray:
        node = self.topology.node(node_name)
        if node.budget_watts is None:
            raise ValueError(f"node {node_name} has no budget assigned")
        return self.node_trace(node_name).power_slack(node.budget_watts)

    def energy_slack(self, node_name: str) -> float:
        node = self.topology.node(node_name)
        if node.budget_watts is None:
            raise ValueError(f"node {node_name} has no budget assigned")
        return self.node_trace(node_name).energy_slack(node.budget_watts)

    def utilization(self, node_name: str) -> float:
        """Mean power / budget at a node — fraction of budget doing work."""
        node = self.topology.node(node_name)
        if node.budget_watts is None:
            raise ValueError(f"node {node_name} has no budget assigned")
        if node.budget_watts == 0:
            return 0.0
        return self.node_mean(node_name) / node.budget_watts


def peak_reduction_by_level(
    before: NodePowerView, after: NodePowerView
) -> Dict[str, float]:
    """Fractional sum-of-peaks reduction per level (Figure 10's y-axis).

    Positive values mean ``after`` fragments less than ``before``.
    """
    reductions: Dict[str, float] = {}
    for level in before.topology.levels():
        peak_before = before.sum_of_peaks(level)
        peak_after = after.sum_of_peaks(level)
        if peak_before == 0:
            reductions[level] = 0.0
        else:
            reductions[level] = (peak_before - peak_after) / peak_before
    return reductions
