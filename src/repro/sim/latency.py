"""Latency model for latency-critical servers.

The paper's conversion threshold is "the load level of each server when LC
achieves satisfactory QoS" (Sec. 4.2) — QoS meaning response latency.  This
module supplies the missing physics: an M/M/1-style latency-vs-utilisation
curve per server, so an operator can derive the guarded load level from a
latency SLO instead of guessing a percentile.

``latency(load) = service_time / (1 − load)`` — the standard single-server
queueing approximation; tail latency multiplies the mean by a percentile
factor (for M/M/1 the p-th percentile of sojourn time is
``−ln(1−p) × mean``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

ArrayOrFloat = Union[float, np.ndarray]


@dataclass(frozen=True)
class LatencyModel:
    """M/M/1 latency as a function of per-server load.

    Attributes
    ----------
    service_time_ms:
        Mean service time at zero queueing.
    max_load:
        Numerical guard below 1.0: loads are clipped here to keep the
        hyperbola finite.
    """

    service_time_ms: float = 5.0
    max_load: float = 0.999

    def __post_init__(self) -> None:
        if self.service_time_ms <= 0:
            raise ValueError("service time must be positive")
        if not 0 < self.max_load < 1:
            raise ValueError("max_load must be in (0, 1)")

    # ------------------------------------------------------------------
    def mean_latency_ms(self, load: ArrayOrFloat) -> ArrayOrFloat:
        """Mean sojourn time at utilisation ``load``."""
        load = np.clip(load, 0.0, self.max_load)
        value = self.service_time_ms / (1.0 - load)
        if np.ndim(value) == 0:
            return float(value)
        return value

    def percentile_latency_ms(
        self, load: ArrayOrFloat, percentile: float = 99.0
    ) -> ArrayOrFloat:
        """The ``percentile``-th sojourn-time percentile at ``load``.

        For M/M/1 sojourn time is exponential with the mean above, so the
        p-quantile is ``−ln(1 − p/100) ×`` mean.
        """
        if not 0 < percentile < 100:
            raise ValueError("percentile must be in (0, 100)")
        factor = -math.log(1.0 - percentile / 100.0)
        value = np.asarray(self.mean_latency_ms(load)) * factor
        if np.ndim(load) == 0:
            return float(value)
        return value

    # ------------------------------------------------------------------
    def load_for_slo(
        self, slo_ms: float, *, percentile: float = 99.0
    ) -> float:
        """The highest per-server load that keeps the tail under ``slo_ms``.

        Inverts the percentile curve: this is the principled value of the
        conversion threshold ``L_conv``.
        """
        if slo_ms <= 0:
            raise ValueError("SLO must be positive")
        factor = -math.log(1.0 - percentile / 100.0)
        minimum = self.service_time_ms * factor
        if slo_ms <= minimum:
            raise ValueError(
                f"SLO {slo_ms} ms is unachievable: even an idle server's "
                f"p{percentile:g} is {minimum:.2f} ms"
            )
        load = 1.0 - self.service_time_ms * factor / slo_ms
        return min(load, self.max_load)

    def slo_satisfied(
        self, load: ArrayOrFloat, slo_ms: float, *, percentile: float = 99.0
    ) -> ArrayOrFloat:
        """Boolean (per element): does the tail meet the SLO at ``load``?"""
        tail = self.percentile_latency_ms(load, percentile)
        result = np.asarray(tail) <= slo_ms
        if np.ndim(load) == 0:
            return bool(result)
        return result
