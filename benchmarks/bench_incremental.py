"""Incremental fleet state vs full recompute → ``BENCH_incremental.json``.

Measures the delta layer at the scale where it matters — 100k instances
(override with ``BENCH_INCR_INSTANCES`` / ``BENCH_INCR_SAMPLES``) — and
gates the refactor's headline claim: evaluating a placement action through
the incremental path (apply the delta, re-score only the dirty subtree)
must be at least :data:`MIN_SPEEDUP`× faster than the full-recompute
baseline (rebuild the power view and re-score the level from scratch).

Three sections are emitted:

* ``swap_eval`` — swap-evaluation throughput of the remapping engine's
  cached-score loop (candidates evaluated per second);
* ``delta_apply`` — per-delta apply latency through a
  :class:`~repro.engine.delta.PlacementState` fanning out to the power
  view, asynchrony index, and headroom index (the ``delta.apply_s``
  histogram);
* ``gate`` — incremental-vs-full speedup at the 100k-instance point.
  The gate records ``skipped`` (and passes vacuously) only when the
  runner cannot fit the fixture in memory.

``tools/bench_compare.py`` re-applies the speedup gate in CI.
"""

import os

import numpy as np
import pytest

from repro import obs
from repro.core.metrics import AsynchronyIndex, node_asynchrony_scores
from repro.core.remapping import RemapConfig, RemappingEngine
from repro.engine.delta import PlacementState
from repro.infra import Assignment, Level, NodePowerView, build_topology, ocp_spec
from repro.infra.budget import provision_from_view
from repro.infra.headroom import HeadroomIndex
from repro.traces import TimeGrid, TraceSet

N_INSTANCES = int(os.environ.get("BENCH_INCR_INSTANCES", "100000"))
N_SAMPLES = int(os.environ.get("BENCH_INCR_SAMPLES", "336"))  # 1 week @ 30 min
N_DELTAS = int(os.environ.get("BENCH_INCR_DELTAS", "64"))
N_FULL = int(os.environ.get("BENCH_INCR_FULL", "4"))

#: The incremental path must beat a full rebuild per placement action by
#: at least this factor at the 100k-instance point.
MIN_SPEEDUP = 5.0


def _build_fleet(n_instances, n_samples):
    """A synthetic phase-diverse fleet on the OCP tree, sized to ``n``."""
    rng = np.random.default_rng(7)
    topo = build_topology(
        ocp_spec(
            "dc",
            suites=4,
            msbs_per_suite=2,
            sbs_per_msb=2,
            rpps_per_sb=3,
            racks_per_rpp=4,
            servers_per_rack=max(1, -(-n_instances // 192)),  # 192 racks
        )
    )
    grid = TimeGrid(0, 30, n_samples)
    t = np.arange(n_samples)
    phases = rng.uniform(0, 2 * np.pi, size=n_instances)
    base = rng.uniform(80, 120, size=n_instances)
    # Broadcast build: diurnal sinusoid per instance plus noise-free offset
    # keeps the build fast and the memory bounded by the matrix itself.
    matrix = base[:, None] + 30.0 * np.sin(
        2 * np.pi * t[None, :] / 48.0 + phases[:, None]
    )
    ids = [f"i{k}" for k in range(n_instances)]
    traces = TraceSet(grid, ids, matrix)
    leaf_names = topo.leaf_names()
    mapping = {ids[k]: leaf_names[k % len(leaf_names)] for k in range(n_instances)}
    return topo, Assignment(topo, mapping), traces


def _swap_pairs(state, traces, n_pairs, seed=11):
    rng = np.random.default_rng(seed)
    ids = traces.ids
    pairs = []
    while len(pairs) < n_pairs:
        a, b = rng.integers(0, len(ids), size=2)
        if a == b:
            continue
        id_a, id_b = ids[int(a)], ids[int(b)]
        if state.leaf_of(id_a) != state.leaf_of(id_b):
            pairs.append((id_a, id_b))
    return pairs


@pytest.mark.benchmark(group="incremental")
def test_incremental_vs_full_recompute(benchmark, emit_report):
    import time

    try:
        topo, assignment, traces = _build_fleet(N_INSTANCES, N_SAMPLES)
    except MemoryError:
        obs.update_bench(
            "incremental",
            "gate",
            {
                "skipped": True,
                "reason": f"fixture ({N_INSTANCES}x{N_SAMPLES}) does not fit in memory",
                "min_speedup": MIN_SPEEDUP,
                "passed": True,
            },
        )
        pytest.skip("fixture does not fit in memory")

    level = Level.RPP

    # ------------------------------------------------------------------
    # incremental path: one PlacementState fanning out to view + indices
    # ------------------------------------------------------------------
    state = PlacementState(topo, traces, assignment)
    view = state.register(NodePowerView(topo, state.assignment(), traces))
    provision_from_view(view, margin=0.25)
    score_index = state.register(AsynchronyIndex(view, level))
    state.register(HeadroomIndex(view))
    pairs = _swap_pairs(state, traces, N_DELTAS)

    def _incremental():
        started = time.perf_counter()
        for id_a, id_b in pairs:
            state.swap(id_a, id_b)
            score_index.scores()
        return (time.perf_counter() - started) / len(pairs)

    incremental_per_delta = benchmark.pedantic(_incremental, rounds=1, iterations=1)

    # ------------------------------------------------------------------
    # full-recompute baseline: rebuild view + re-score after each action
    # ------------------------------------------------------------------
    current = state.assignment()
    full_samples = []
    for id_a, id_b in pairs[:N_FULL]:
        current = current.with_swap(id_b, id_a)  # walk the swaps back
        started = time.perf_counter()
        fresh_view = NodePowerView(topo, current, traces)
        node_asynchrony_scores(current, traces, level, view=fresh_view)
        full_samples.append(time.perf_counter() - started)
    full_per_delta = float(np.mean(full_samples))

    speedup = full_per_delta / incremental_per_delta

    # ------------------------------------------------------------------
    # swap-evaluation throughput of the cached-score remapping loop
    # ------------------------------------------------------------------
    obs.reset_metrics()
    remap_ids = traces.ids[: min(len(traces.ids), 4096)]
    remap_leaves = topo.leaf_names()
    remap_mapping = {
        instance_id: remap_leaves[k % len(remap_leaves)]
        for k, instance_id in enumerate(remap_ids)
    }
    remap_rows = [traces.index_of(i) for i in remap_ids]
    remap_traces = TraceSet(traces.grid, list(remap_ids), traces.matrix[remap_rows])
    remap_assignment = Assignment(topo, remap_mapping)
    engine = RemappingEngine(RemapConfig(level=level, max_swaps=24))
    started = time.perf_counter()
    result = engine.run(remap_assignment, remap_traces)
    remap_wall = time.perf_counter() - started
    candidates = obs.counter_value("remap.candidates_evaluated")

    workload = {
        "n_instances": N_INSTANCES,
        "n_samples": N_SAMPLES,
        "n_deltas": len(pairs),
        "n_full_baseline_deltas": N_FULL,
        "level": str(level),
        "matrix_mb": round(traces.matrix.nbytes / 1e6, 1),
    }
    delta_apply = {
        "per_delta_s": incremental_per_delta,
        "full_recompute_per_delta_s": full_per_delta,
        "deltas_per_s": 1.0 / incremental_per_delta,
    }
    swap_eval = {
        "n_swaps_accepted": result.n_swaps,
        "candidates_evaluated": candidates,
        "candidates_per_s": candidates / remap_wall if remap_wall > 0 else 0.0,
        "wall_s": remap_wall,
    }
    gate = {
        "skipped": False,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "passed": speedup >= MIN_SPEEDUP,
    }
    obs.update_bench("incremental", "workload", workload)
    obs.update_bench("incremental", "delta_apply", delta_apply)
    obs.update_bench("incremental", "swap_eval", swap_eval)
    obs.update_bench("incremental", "gate", gate)

    emit_report(
        "incremental",
        "\n".join(
            [
                "incremental fleet state @ "
                f"{N_INSTANCES} instances x {N_SAMPLES} samples",
                f"  delta apply        {incremental_per_delta * 1e3:9.3f} ms",
                f"  full recompute     {full_per_delta * 1e3:9.3f} ms",
                f"  speedup            {speedup:9.1f}x (gate >= {MIN_SPEEDUP:.0f}x)",
                f"  swap-eval rate     {swap_eval['candidates_per_s']:9.0f} cand/s",
            ]
        ),
    )

    assert speedup >= MIN_SPEEDUP, (
        f"incremental path is only {speedup:.1f}x faster than full "
        f"recompute (gate: {MIN_SPEEDUP:.0f}x)"
    )
