"""Shared-memory data plane: handles, shards, and leak-proof lifecycle.

The non-negotiable here is the lifecycle: whatever way a sharded job ends
— normal return, a worker dying under it, or a ``KeyboardInterrupt`` — no
``smoothop_*`` segment may survive in ``/dev/shm`` and the owner registry
must come back empty.
"""

import glob
import os

import numpy as np
import pytest

from repro.engine.parallel import WorkerPool
from repro.engine.sharedmem import (
    SEGMENT_PREFIX,
    SharedMatrix,
    ShardSpec,
    attach_matrix,
    attach_rows,
    attached_view,
    detach_all,
    owned_segment_names,
    shard_ranges,
)


def leaked_segments():
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


@pytest.fixture(autouse=True)
def _no_leftover_segments():
    """Every test must leave /dev/shm and the owner registry clean."""
    assert leaked_segments() == []
    yield
    detach_all()
    assert owned_segment_names() == ()
    assert leaked_segments() == []


# ----------------------------------------------------------------------
# shard_ranges
# ----------------------------------------------------------------------
def test_shard_ranges_cover_every_row_exactly_once():
    for n_rows in (0, 1, 7, 8, 100):
        for n_shards in (1, 3, 8):
            ranges = shard_ranges(n_rows, n_shards)
            covered = [r for start, stop in ranges for r in range(start, stop)]
            assert covered == list(range(n_rows))
            # Near-equal: sizes differ by at most one, empties dropped.
            sizes = [stop - start for start, stop in ranges]
            assert all(size > 0 for size in sizes)
            if sizes:
                assert max(sizes) - min(sizes) <= 1


def test_shard_ranges_validates_inputs():
    with pytest.raises(ValueError):
        shard_ranges(-1, 2)
    with pytest.raises(ValueError):
        shard_ranges(4, 0)


def test_shard_spec_validates_range():
    assert ShardSpec(2, 5).n_rows == 3
    with pytest.raises(ValueError):
        ShardSpec(5, 2)
    with pytest.raises(ValueError):
        ShardSpec(-1, 2)


# ----------------------------------------------------------------------
# handle round-trip
# ----------------------------------------------------------------------
def test_matrix_round_trips_through_a_handle():
    matrix = np.arange(12, dtype=np.float64).reshape(3, 4)
    with SharedMatrix.create(matrix) as shared:
        handle = shared.handle
        assert handle.name.startswith(SEGMENT_PREFIX)
        assert handle.shape == (3, 4)
        assert handle.nbytes == matrix.nbytes
        attached = attach_matrix(handle)
        try:
            assert np.array_equal(attached.array, matrix)
            assert not attached.array.flags.writeable
            with pytest.raises(RuntimeError, match="creating process"):
                attached.unlink()
        finally:
            attached.close()


def test_create_casts_to_requested_dtype():
    matrix = np.ones((2, 3), dtype=np.float64)
    with SharedMatrix.create(matrix, dtype=np.float32) as shared:
        assert shared.array.dtype == np.float32
        assert shared.handle.dtype == np.dtype(np.float32).str


def test_attach_rows_returns_the_requested_block():
    matrix = np.arange(20, dtype=np.float64).reshape(5, 4)
    with SharedMatrix.create(matrix) as shared:
        block = attach_rows(shared.handle, 1, 3)
        assert np.array_equal(block, matrix[1:3])
        with pytest.raises(ValueError, match="row range"):
            attach_rows(shared.handle, 3, 99)
    detach_all()


def test_attached_view_caches_per_handle():
    matrix = np.zeros((2, 2))
    with SharedMatrix.create(matrix) as shared:
        first = attached_view(shared.handle)
        second = attached_view(shared.handle)
        assert first is second
    detach_all()


# ----------------------------------------------------------------------
# lifecycle: normal exit, exceptions, interrupts, worker death
# ----------------------------------------------------------------------
def test_context_manager_unlinks_on_normal_exit():
    with SharedMatrix.create(np.ones((4, 4))) as shared:
        name = shared.name
        assert owned_segment_names() == (name,)
    assert owned_segment_names() == ()
    assert leaked_segments() == []


def test_context_manager_unlinks_on_exception():
    with pytest.raises(RuntimeError, match="boom"):
        with SharedMatrix.create(np.ones((4, 4))):
            raise RuntimeError("boom")
    assert owned_segment_names() == ()


def test_context_manager_unlinks_on_keyboard_interrupt():
    with pytest.raises(KeyboardInterrupt):
        with SharedMatrix.create(np.ones((4, 4))):
            raise KeyboardInterrupt
    assert owned_segment_names() == ()


def test_unlink_is_idempotent():
    shared = SharedMatrix.create(np.ones((2, 2)))
    shared.unlink()
    shared.unlink()
    assert owned_segment_names() == ()


def read_shard_sum(handle, start, stop):
    """Worker-side task: sum one row block of a shared matrix."""
    return float(attach_rows(handle, start, stop).sum())


class DieOnceThenSum:
    """Kills its worker on first run (flag file), sums the shard after."""

    def __init__(self, flag_path):
        self.flag_path = str(flag_path)

    def __call__(self, handle, start, stop):
        if not os.path.exists(self.flag_path):
            with open(self.flag_path, "w") as f:
                f.write("died")
            os._exit(17)
        return read_shard_sum(handle, start, stop)


def test_sharded_job_survives_worker_death_and_unlinks(tmp_path):
    """A worker dying mid-shard breaks the pool; the job must still finish
    on the rebuilt pool and the segment must still be unlinked."""
    matrix = np.arange(40, dtype=np.float64).reshape(10, 4)
    task = DieOnceThenSum(tmp_path / "died.flag")
    with WorkerPool(2) as pool:
        with SharedMatrix.create(matrix) as shared:
            tasks = [
                (shared.handle, start, stop)
                for start, stop in shard_ranges(10, 2)
            ]
            results = pool.map_shards(task, tasks)
        assert results == [float(matrix[s:e].sum()) for s, e in shard_ranges(10, 2)]
        # The death forced at least one executor rebuild.
        assert pool.generation >= 2
    assert owned_segment_names() == ()
    assert leaked_segments() == []


def test_interrupted_sharded_job_unlinks(tmp_path):
    """KeyboardInterrupt inside the publish block must not leak segments."""
    with pytest.raises(KeyboardInterrupt):
        with SharedMatrix.create(np.ones((8, 3))) as shared:
            attach_rows(shared.handle, 0, 4)
            raise KeyboardInterrupt
    detach_all()
    assert owned_segment_names() == ()
    assert leaked_segments() == []
