"""Parallel execution: a persistent worker pool + shared-memory data plane.

:func:`run_many` drives :class:`~repro.engine.spec.ScenarioSpec` /
:class:`~repro.engine.spec.ChaosSpec` lists through worker processes.  The
original implementation built a fresh ``ProcessPoolExecutor`` per call (and
per retry round), which made parallelism a net loss at bench scale — pool
spawn plus per-task pickling of whole fleets cost more than the simulation
itself (``BENCH_engine.json`` recorded a 0.74x "speedup").  Three changes
fix that:

* **persistent pools** — :func:`get_pool` keeps one :class:`WorkerPool`
  alive per worker count for the life of the process, so workers are
  spawned once and reused by every subsequent ``run_many`` / sharded-stage
  call (``fork`` start method where available: workers inherit warm dataset
  caches instead of re-synthesizing them);
* **pinned worker threads** — each worker's initializer pins the BLAS /
  OpenMP thread-pool environment (``OMP_NUM_THREADS`` etc.) to
  :data:`DEFAULT_WORKER_THREADS`, so N workers do not oversubscribe the
  host with N × M library threads;
* **shared-memory shards** — bulk matrix jobs go through
  :meth:`WorkerPool.map_shards`: the matrix is published once via
  :mod:`repro.engine.sharedmem` and tasks carry only row ranges and
  parameters, never the data.

Worker death does not sink a suite.  A killed worker breaks the whole
executor (every outstanding future raises ``BrokenProcessPool``), so the
pool is rebuilt and the unfinished specs are retried — with decorrelated-
jitter backoff between rounds so resubmission storms after a rebuild do not
synchronize — up to ``max_attempts`` tries per spec; the backoff sleep only
ever runs when another attempt follows — a spec out of attempts fails
immediately as a :class:`RunFailure` in its slot of the result list.
``workers <= 1`` or a single spec short-circuits to a plain serial loop
that never touches a pool.

Worker *hangs* do not sink a suite either.  When a
:class:`~repro.engine.deadline.TaskDeadline` is in force (per-call
``deadline=``, the process default installed by
:func:`repro.engine.deadline.set_default_deadline`, or the
``REPRO_TASK_TIMEOUT`` environment variable) the dispatch loop becomes a
watchdog: it polls instead of blocking, SIGKILLs the pool when a task
exceeds its hard deadline (a hung worker never honours a graceful
shutdown) and retries on a rebuilt executor, speculatively re-dispatches
stragglers past a quantile-derived threshold (first result wins, results
stay bit-identical), quarantines a shard whose attempts keep taking
workers down to in-process serial execution, and degrades the whole stage
to serial when a circuit breaker trips on the stage-wide infrastructure
failure rate.  With no deadline configured none of this machinery runs —
the dispatch loop blocks exactly as before.  Deterministic infrastructure
faults for exercising all of it live in :mod:`repro.engine.chaos_infra`.

The pool is not an observability boundary: unless ``REPRO_OBS_CAPTURE=0``
disables it, every pooled task runs under worker-side telemetry capture
(:mod:`repro.obs.remote`) and ships its spans, metric deltas, and events
back with its result; the coordinator merges them into its live tracer,
registry, and event log, records pool health metrics (dispatch/completion
counters, roundtrip/execution/queue latency histograms, worker deaths and
rebuilds, timeouts, speculation outcomes, quarantines), and feeds each
stage into the unified run report (:mod:`repro.obs.report`).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import random
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from . import chaos_infra
from . import deadline as deadline_mod
from .deadline import TaskDeadline, TaskTimeoutError
from .spec import ChaosSpec, ScenarioSpec
from .state import RunArtifacts

#: Tries per spec before it is written off as a :class:`RunFailure`.
DEFAULT_MAX_ATTEMPTS = 3

#: Base delay between retry rounds (the floor of the jittered sleep).
DEFAULT_RETRY_BACKOFF_S = 0.25

#: Ceiling on a single decorrelated-jitter backoff sleep.
MAX_RETRY_BACKOFF_S = 30.0

#: Thread-pool size pinned into every worker (override with the
#: ``REPRO_WORKER_THREADS`` environment variable).  One thread per worker
#: is the right default: the pool already owns the cores, and letting each
#: worker's BLAS spin up ``os.cpu_count()`` threads of its own
#: oversubscribes the host N×M.
DEFAULT_WORKER_THREADS = 1

#: Environment knobs the worker initializer pins.  Covers OpenMP, the
#: common BLAS builds numpy links against, and numexpr — the libraries
#: that auto-size their pools to the whole machine.
WORKER_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


@dataclass
class RunFailure:
    """One spec's structured failure after every retry was exhausted.

    Occupies the spec's slot in :func:`run_many`'s result list, so callers
    always get one entry per spec, in spec order — filter with
    ``isinstance(entry, RunFailure)`` (or check :attr:`RunArtifacts.result`)
    to separate the casualties from the survivors.
    """

    spec: Any
    error_type: str
    error: str
    attempts: int

    @property
    def result(self) -> None:
        """Mirror of :attr:`RunArtifacts.result`, always ``None``."""
        return None


def execute(spec: Any) -> RunArtifacts:
    """Run one spec (scenario, chaos-harness, or callable) and wrap it.

    Module-level so it pickles for worker processes.  Zero-argument
    callables are the escape hatch for custom workloads (and for
    fault-injection tests): the callable runs as-is, and its return value
    is wrapped in :class:`RunArtifacts` unless it already is one.
    """
    if isinstance(spec, ScenarioSpec):
        from .core import Engine

        return Engine.from_spec(spec).run(spec)
    if isinstance(spec, ChaosSpec):
        # Lazy: the chaos harness imports the engine, not vice versa.
        from ..faults.harness import run_chaos_scenario
        from ..obs import events as obs_events

        outcome = run_chaos_scenario(spec.resolved_scenario(), **spec.run_kwargs())
        return RunArtifacts(
            spec=spec,
            result=outcome,
            events=obs_events.get_event_log(),
        )
    if callable(spec):
        outcome = spec()
        if isinstance(outcome, RunArtifacts):
            return outcome
        return RunArtifacts(spec=spec, result=outcome)
    raise TypeError(f"cannot execute spec of type {type(spec).__name__}")


# ----------------------------------------------------------------------
# worker-side plumbing
# ----------------------------------------------------------------------
def worker_thread_count() -> int:
    """The thread-pool size workers pin (env override, floor 1)."""
    try:
        return max(1, int(os.environ.get("REPRO_WORKER_THREADS", "")))
    except ValueError:
        return DEFAULT_WORKER_THREADS


def _init_worker(n_threads: int) -> None:
    """Pool initializer: pin library thread pools inside the worker.

    Runs once per worker process, before any task.  Sets the standard
    thread-count environment variables so any library initialised after
    this point sizes itself to ``n_threads``, and asks already-loaded
    pools to shrink via ``threadpoolctl`` when that package is available
    (forked workers inherit the parent's BLAS state, which env vars alone
    cannot retroactively change).

    Also arms the infrastructure fault injectors when the
    ``REPRO_INFRA_FAULTS`` environment variable is set — faults fire only
    in processes that ran this initializer, so the coordinator (and any
    quarantined/degraded serial execution it performs) stays fault-free.
    """
    for name in WORKER_THREAD_ENV_VARS:
        os.environ[name] = str(n_threads)
    if os.environ.get(chaos_infra.FAULTS_ENV):
        chaos_infra.activate()
    try:  # best-effort: not a baked-in dependency
        import threadpoolctl

        threadpoolctl.threadpool_limits(n_threads)
    except Exception:
        pass


def _pool_execute(spec: Any) -> RunArtifacts:
    """Worker-side task wrapper around :func:`execute`.

    Persistent workers outlive many tasks, so an event log inherited at
    fork time must not accumulate every task's events for the life of the
    worker: when recording is active, each task runs under a fresh log and
    its artifacts carry only its own events.
    """
    from ..obs import events as obs_events

    if obs_events.get_event_log() is None:
        return execute(spec)
    with obs_events.recording():
        return execute(spec)


def _pool_execute_captured(spec: Any, index: int, attempt: int):
    """Worker-side spec task with telemetry capture.

    Wraps :func:`execute` in :func:`repro.obs.remote.run_captured`, so the
    worker ships ``(artifacts, bundle)`` — the bundle carrying the spec's
    span subtree, metric deltas, and capture-level events back to the
    coordinator for merging.  ``execute`` is called directly, not through
    :func:`_pool_execute`: the capture installs a fresh per-task event log
    already, and nesting another recording inside it would swallow the
    spec's events before the bundle could ship them.
    """
    from ..obs import remote as obs_remote

    return obs_remote.run_captured(execute, index, "run.spec", attempt, (spec,))


def _pool_execute_faulty(spec: Any, index: int, attempt: int) -> RunArtifacts:
    """:func:`_pool_execute` behind the armed infra fault injectors."""
    return chaos_infra.call_with_faults(_pool_execute, index, attempt, spec)


def _pool_execute_faulty_captured(spec: Any, index: int, attempt: int):
    """:func:`_pool_execute_captured`'s fault-injected twin.

    The injector runs *inside* the capture, so injected events (e.g. an
    ``oversized_bundle`` payload) land in the shipped bundle and an
    injected exception ships its telemetry like any real failure.
    """
    from ..obs import remote as obs_remote

    return obs_remote.run_captured(
        chaos_infra.call_with_faults,
        index,
        "run.spec",
        attempt,
        (execute, index, attempt, spec),
    )


def _bundle_stats(bundle: Any, roundtrip_s: float, *, ok: bool = True):
    """Coordinator-side: a run-report row for one shipped bundle."""
    from ..obs.report import TaskStats

    return TaskStats(
        shard_id=bundle.shard_id,
        worker_pid=bundle.worker_pid,
        attempt=bundle.attempt,
        exec_s=bundle.wall_s,
        cpu_s=bundle.cpu_s,
        roundtrip_s=roundtrip_s,
        queue_s=max(0.0, roundtrip_s - bundle.wall_s),
        ok=ok,
    )


def _decorrelated_backoff(
    base: float,
    previous: float,
    rng: random.Random,
    cap: float = MAX_RETRY_BACKOFF_S,
) -> float:
    """One decorrelated-jitter retry delay: uniform in ``[base, 3·prev]``.

    The classic "decorrelated jitter" schedule: each sleep is drawn from
    ``[base, previous * 3]`` and capped, so concurrent retriers that broke
    at the same instant (every task in flight when an executor dies breaks
    at once) spread out instead of resubmitting in lockstep, while the
    expected delay still grows geometrically with consecutive failures.
    ``base <= 0`` disables the backoff entirely (returns ``0.0``).
    """
    if base <= 0:
        return 0.0
    return min(cap, rng.uniform(base, max(base, previous * 3)))


# ----------------------------------------------------------------------
# the persistent pool
# ----------------------------------------------------------------------
class WorkerPool:
    """A process pool spawned once and reused across calls.

    Wraps a ``ProcessPoolExecutor`` whose workers pin their thread pools at
    startup (:func:`_init_worker`).  The executor is created lazily on
    first submit and rebuilt on demand after a ``BrokenProcessPool`` —
    :attr:`generation` counts executor builds, so callers (and tests) can
    observe that back-to-back batches reused one set of workers.
    """

    def __init__(
        self,
        workers: int,
        *,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
        worker_threads: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("a pool needs at least one worker")
        self.workers = workers
        if mp_context is None:
            try:
                mp_context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - fork unavailable (non-POSIX)
                mp_context = multiprocessing.get_context()
        self._mp_context = mp_context
        self._worker_threads = (
            worker_threads if worker_threads is not None else worker_thread_count()
        )
        self._executor: Optional[ProcessPoolExecutor] = None
        #: Number of executors built over this pool's lifetime.
        self.generation = 0

    # ------------------------------------------------------------------
    @property
    def is_running(self) -> bool:
        return self._executor is not None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._mp_context,
                initializer=_init_worker,
                initargs=(self._worker_threads,),
            )
            self.generation += 1
        return self._executor

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any):
        """Submit one task, building the executor on first use."""
        return self._ensure_executor().submit(fn, *args, **kwargs)

    def submit_resilient(
        self,
        fn: Callable[..., Any],
        /,
        *args: Any,
        on_rebuild: Optional[Callable[[], None]] = None,
    ):
        """Submit, rebuilding first when a prior task's death broke the pool.

        A worker death breaks the whole executor *asynchronously*, so a
        submit racing that death raises ``BrokenProcessPool`` synchronously
        instead of returning a future.  The task never reached a worker —
        nothing ran, nothing can run twice — so the right response is to
        rebuild and resubmit on the fresh executor rather than let the
        exception escape and strand a broken executor in the persistent
        pool.  Still bounded: every break burns an attempt for each task
        that was in flight on the dead executor, so a persistent killer
        exhausts ``max_attempts`` like any other failure.
        """
        from concurrent.futures.process import BrokenProcessPool

        while True:
            try:
                return self.submit(fn, *args)
            except BrokenProcessPool:
                if on_rebuild is not None:
                    on_rebuild()
                self.rebuild()

    def warm(self) -> None:
        """Spawn the workers now and wait for every initializer to finish.

        One no-op barrier task per worker forces the executor to actually
        fork/spawn, so the first real batch is not charged the startup
        cost.  Forking *after* the parent has warmed its dataset caches
        also hands every worker those caches for free.
        """
        futures = [self.submit(_worker_barrier, index) for index in range(self.workers)]
        wait(futures)

    def rebuild(self) -> None:
        """Discard a (possibly broken) executor; the next submit re-forks."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def rebuild_if_broken(self) -> bool:
        """Rebuild only when the live executor really is broken.

        A resilient submit may already have swapped in a fresh executor
        this round; tearing that one down again would cancel the healthy
        tasks it is running.  Returns whether a rebuild happened.
        """
        executor = self._executor
        if executor is None or not getattr(executor, "_broken", False):
            return False
        self.rebuild()
        return True

    def kill(self) -> None:
        """SIGKILL the workers and discard the executor without waiting.

        :meth:`rebuild`'s graceful ``shutdown(wait=True)`` joins the
        workers — which never returns when one of them is *hung* rather
        than dead.  The deadline watchdog therefore uses this path: kill
        every worker process outright, then tear the executor down without
        waiting on anything.  The next submit re-forks as usual.
        """
        executor, self._executor = self._executor, None
        if executor is None:
            return
        for process in list(getattr(executor, "_processes", {}).values()):
            try:
                process.kill()
            except Exception:  # pragma: no cover - already-reaped worker
                pass
        executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Stop the workers.  The pool object stays reusable (lazy respawn)."""
        self.rebuild()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def map_shards(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Sequence[Any]],
        *,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        retry_backoff_s: float = 0.0,
        label: str = "shard",
        capture: Optional[bool] = None,
        deadline: Optional[TaskDeadline] = None,
    ) -> List[Any]:
        """Run ``fn(*task)`` for every task, in task order, with retries.

        The sharded-stage workhorse: ``tasks`` are lightweight argument
        tuples (shared-memory handles, row ranges, parameters — see
        :mod:`repro.engine.sharedmem`), never bulk data.  A broken pool is
        rebuilt and unfinished tasks retried like :func:`run_many` does for
        specs; a task that exhausts its attempts re-raises its last error,
        because a missing shard (unlike a missing scenario) poisons the
        whole result matrix.

        ``deadline`` bounds completion under partial failure (hang
        watchdog, straggler speculation, poison-shard quarantine, serial
        degradation — see :class:`~repro.engine.deadline.TaskDeadline`);
        when ``None`` the process default
        (:func:`repro.engine.deadline.get_default_deadline`) applies, and
        with no default either the loop blocks unbounded exactly as
        before.  The shard functions must be pure for speculation to be
        sound — both copies of a shard compute the same value, so whichever
        finishes first is *the* result.

        Unless capture is disabled (the ``REPRO_OBS_CAPTURE`` kill switch,
        or ``capture=False``), every task runs under worker-side telemetry
        capture (:mod:`repro.obs.remote`): its spans, metric deltas, and
        events ship back with the result and are merged into this process's
        live tracer/registry/log — sorted by shard id, so the merged state
        is independent of completion order.  ``label`` names the per-task
        root span (tagged with shard id and worker pid) and the stage's
        entry in the run report (:mod:`repro.obs.report`); the pool also
        records its own health metrics (dispatch/completion/retry counters,
        roundtrip/execution/queue latency histograms).
        """
        from ..obs import remote as obs_remote

        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s cannot be negative")
        tasks = [tuple(task) for task in tasks]
        do_capture = obs_remote.capture_enabled() and (capture is None or capture)
        if deadline is None:
            deadline = deadline_mod.get_default_deadline()
        faults_on = chaos_infra.configured()

        def submit_pooled(index: int, attempt: int, on_rebuild):
            if faults_on:
                if do_capture:
                    return self.submit_resilient(
                        obs_remote.run_captured,
                        chaos_infra.call_with_faults,
                        index,
                        label,
                        attempt,
                        (fn, index, attempt, *tasks[index]),
                        on_rebuild=on_rebuild,
                    )
                return self.submit_resilient(
                    chaos_infra.call_with_faults,
                    fn,
                    index,
                    attempt,
                    *tasks[index],
                    on_rebuild=on_rebuild,
                )
            if do_capture:
                return self.submit_resilient(
                    obs_remote.run_captured,
                    fn,
                    index,
                    label,
                    attempt,
                    tasks[index],
                    on_rebuild=on_rebuild,
                )
            return self.submit_resilient(
                fn, *tasks[index], on_rebuild=on_rebuild
            )

        driver = _StageDriver(
            self,
            len(tasks),
            label=label,
            do_capture=do_capture,
            max_attempts=max_attempts,
            retry_backoff_s=retry_backoff_s,
            deadline=deadline,
            submit_pooled=submit_pooled,
            run_inline=lambda index: fn(*tasks[index]),
            on_failure=None,
            raise_on_exhaust=True,
        )
        return driver.run()

    def _finish_stage(
        self,
        label: str,
        started_at: float,
        bundles: Sequence[Any],
        stats: Sequence[Any],
    ) -> None:
        """Merge shipped telemetry and record the stage in the run report."""
        from ..obs import metrics as obs_metrics
        from ..obs import remote as obs_remote
        from ..obs import report as obs_report

        obs_remote.merge_bundles(bundles)
        obs_metrics.set_gauge("pool.workers", self.workers)
        obs_metrics.set_gauge("pool.generation", self.generation)
        obs_report.record_stage(
            label,
            workers=self.workers,
            wall_s=time.perf_counter() - started_at,
            tasks=stats,
            generation=self.generation,
        )


# ----------------------------------------------------------------------
# the dispatch/retry driver
# ----------------------------------------------------------------------
class _StageDriver:
    """The shared dispatch loop behind ``map_shards`` and ``run_many``.

    One instance drives one stage: it owns the per-task attempt counts,
    the retry rounds (with decorrelated-jitter backoff and one-at-a-time
    isolation after an executor break), the telemetry bookkeeping, and —
    when a :class:`~repro.engine.deadline.TaskDeadline` is in force — the
    four failure domains:

    * **watchdog** — the wait loop polls at ``poll_interval_s``; a task
      older than ``hard_timeout_s`` gets the whole pool SIGKILLed (a hung
      worker never honours a graceful shutdown), fails with
      :class:`TaskTimeoutError`, and retries on a rebuilt executor.  Tasks
      that were merely in flight on the killed pool fail too, but their
      failure is collateral: it burns an attempt (as any executor break
      does) without counting toward quarantine.
    * **speculation** — a task older than the straggler threshold (the
      live ``pool.task_exec_s`` quantile scaled by ``straggler_factor``,
      floored at ``soft_timeout_s``) gets one duplicate dispatched at the
      same attempt number.  First result wins: the loser's result and
      bundle are dropped, so merged telemetry and results are identical to
      an unspeculated run.
    * **quarantine** — a task whose attempts have taken workers down
      ``quarantine_after`` times (deaths or hard timeouts) runs in-process
      serially from then on, where it cannot condemn the pool again.
    * **circuit breaker** — when infrastructure failures reach both
      ``degrade_min_failures`` and ``degrade_failure_ratio`` of dispatches,
      the whole stage degrades to in-process serial execution.

    The two callers differ only in how they submit, how they execute
    in-process, and what an exhausted task does (``map_shards`` raises,
    ``run_many`` records a :class:`RunFailure` slot via ``on_failure``).
    With ``deadline=None`` the wait loop blocks unbounded and none of the
    failure-domain machinery runs — byte-for-byte the legacy behaviour.
    """

    def __init__(
        self,
        pool: WorkerPool,
        n_tasks: int,
        *,
        label: str,
        do_capture: bool,
        max_attempts: int,
        retry_backoff_s: float,
        deadline: Optional[TaskDeadline],
        submit_pooled: Callable[..., Any],
        run_inline: Callable[[int], Any],
        on_failure: Optional[Callable[[int, BaseException, int], Any]],
        raise_on_exhaust: bool,
    ) -> None:
        self.pool = pool
        self.n_tasks = n_tasks
        self.label = label
        self.do_capture = do_capture
        self.max_attempts = max_attempts
        self.retry_backoff_s = retry_backoff_s
        self.deadline = deadline
        self.submit_pooled = submit_pooled
        self.run_inline = run_inline
        self.on_failure = on_failure
        self.raise_on_exhaust = raise_on_exhaust

        self.results: List[Any] = [None] * n_tasks
        self.attempts = [0] * n_tasks
        self.errors: Dict[int, BaseException] = {}
        self.failed: List[int] = []
        self.infra_failures = [0] * n_tasks
        self.infra_failures_total = 0
        self.dispatched_total = 0
        self.quarantined: Set[int] = set()
        self.degraded = False
        self.bundles: List[Any] = []
        self.stats: List[Any] = []
        self.started_at = time.perf_counter()
        self._rng = random.Random()
        self._backoff_prev = retry_backoff_s

    # ------------------------------------------------------------------
    def run(self) -> List[Any]:
        pending = list(range(self.n_tasks))
        round_index = 0
        isolate = False
        while pending:
            self.failed = []
            self._maybe_degrade()
            inline = [
                index
                for index in pending
                if self.degraded or index in self.quarantined
            ]
            pooled = [index for index in pending if index not in set(inline)]
            for index in inline:
                self._run_one_inline(index)
            round_broken = False
            # After a round in which the executor died, retry the pooled
            # survivors one at a time: a repeat killer then only breaks its
            # own attempt, so an innocent task can lose at most one attempt
            # as collateral however persistent the killer is.
            groups = (
                [[index] for index in pooled]
                if isolate
                else ([pooled] if pooled else [])
            )
            for group in groups:
                round_broken = self._run_group(group, round_index) or round_broken
            isolate = round_broken
            ordered_failed = sorted(set(self.failed))
            exhausted = [
                index
                for index in ordered_failed
                if self.attempts[index] >= self.max_attempts
            ]
            if exhausted and self.raise_on_exhaust:
                # The stage is lost, but its telemetry is not: merge what
                # shipped (including failed attempts' bundles) before
                # re-raising, so the failure is diagnosable from the
                # coordinator's own span tree and event log.
                self.finish()
                raise self.errors[exhausted[0]]
            pending = [
                index
                for index in ordered_failed
                if self.attempts[index] < self.max_attempts
            ]
            if pending:
                # Only sleep when a retry round actually follows: a task out
                # of attempts has already been settled and waiting would
                # delay the caller for nothing.
                time.sleep(self._next_backoff())
                round_index += 1
        self.finish()
        return self.results

    def finish(self) -> None:
        if self.do_capture:
            self.pool._finish_stage(
                self.label, self.started_at, self.bundles, self.stats
            )

    # ------------------------------------------------------------------
    def _run_one_inline(self, index: int) -> None:
        """One quarantined/degraded task, in-process and serial."""
        from ..obs import metrics as obs_metrics

        self.attempts[index] += 1
        if self.do_capture:
            obs_metrics.count("pool.tasks_inline")
        try:
            self.results[index] = self.run_inline(index)
        except Exception as error:  # noqa: BLE001
            self.failed.append(index)
            self.errors[index] = error
            if self.on_failure is not None:
                self.results[index] = self.on_failure(
                    index, error, self.attempts[index]
                )
            if self.do_capture:
                obs_metrics.count("pool.tasks_failed")

    def _run_group(self, group: List[int], round_index: int) -> bool:
        """Dispatch one group of pooled tasks and settle every one of them.

        Returns whether the executor broke (worker death or watchdog kill)
        while the group ran, so the next round can isolate.
        """
        from ..obs import metrics as obs_metrics

        future_of: Dict[Any, int] = {}
        dispatched_at: Dict[Any, float] = {}
        attempt_of: Dict[Any, int] = {}
        inflight: Dict[int, Set[Any]] = {index: set() for index in group}
        spec_futures: Set[Any] = set()
        resolved: Set[int] = set()
        speculated: Set[int] = set()
        broken = False

        def on_submit_rebuild() -> None:
            if self.do_capture:
                obs_metrics.count("pool.worker_deaths")
                obs_metrics.count("pool.rebuilds")

        def dispatch(index: int, *, speculative: bool = False):
            # A speculative twin is a *new dispatch* of the same logical
            # attempt: it carries the next attempt number (so per-dispatch
            # machinery — telemetry labels, deterministic fault injection —
            # sees a fresh execution, not a replay of the straggling one)
            # but does not consume a slot of the task's retry budget.
            attempt = self.attempts[index] + (1 if speculative else 0)
            future = self.submit_pooled(index, attempt, on_submit_rebuild)
            future_of[future] = index
            dispatched_at[future] = time.perf_counter()
            attempt_of[future] = attempt
            inflight[index].add(future)
            self.dispatched_total += 1
            if speculative:
                spec_futures.add(future)
            return future

        for index in group:
            self.attempts[index] += 1
            dispatch(index)
        if self.do_capture:
            obs_metrics.count("pool.tasks_dispatched", len(group))
            if round_index > 0:
                obs_metrics.count("pool.tasks_retried", len(group))

        deadline = self.deadline
        watch = deadline is not None and deadline.watches
        outstanding = set(future_of)
        while outstanding:
            done, outstanding = wait(
                outstanding,
                timeout=deadline.poll_interval_s if watch else None,
                return_when=FIRST_COMPLETED,
            )
            for future in done:
                index = future_of[future]
                inflight[index].discard(future)
                if index in resolved:
                    # A speculation race this index already won (or a
                    # watchdog kill already settled): drop the late copy.
                    if self.do_capture:
                        obs_metrics.count("pool.speculative_losses")
                    continue
                try:
                    outcome = future.result()
                except BaseException as error:  # noqa: BLE001
                    # BrokenProcessPool lands here for *every* future that
                    # shared the dead executor; record the attempt and let
                    # the retry rounds sort survivors out.  A captured
                    # failure still ships its telemetry, attached to the
                    # exception itself.
                    if _pool_is_broken(error):
                        # One dead worker breaks the executor for *every*
                        # in-flight future, so charge the stage-wide breaker
                        # once per break, not once per collateral victim —
                        # else a single death in a wide stage masquerades as
                        # a stage-wide failure wave.  Per-index counts still
                        # accrue for quarantine.
                        self._note_infra_failure(
                            index, charge_stage=not broken
                        )
                        broken = True
                    if inflight[index]:
                        # A speculative twin of this task is still
                        # unsettled; let its outcome decide the index.
                        continue
                    self._record_failure(index, error, dispatched_at[future])
                    resolved.add(index)
                    continue
                self._record_success(
                    index,
                    outcome,
                    dispatched_at[future],
                    speculative_win=future in spec_futures,
                )
                resolved.add(index)
            if outstanding and resolved.issuperset(group):
                # Every index is settled; only speculation losers remain in
                # flight.  Abandon them — their results would be discarded
                # anyway, and holding the stage on a straggler is exactly
                # what speculation exists to avoid.  (The workers running
                # them finish in the background and the executor drops the
                # results.)
                if self.do_capture:
                    obs_metrics.count(
                        "pool.speculative_losses", len(outstanding)
                    )
                outstanding.clear()
                continue
            if watch and outstanding:
                now = time.perf_counter()
                if self._enforce_hard_deadline(
                    now, outstanding, future_of, dispatched_at, attempt_of,
                    resolved,
                ):
                    # The pool is dead; every unresolved index has been
                    # failed.  Nothing outstanding can ever be collected.
                    outstanding.clear()
                    broken = True
                    continue
                self._maybe_speculate(
                    now, outstanding, future_of, dispatched_at, inflight,
                    resolved, speculated, dispatch,
                )
            # No early exit on ``broken``: a dead executor resolves every
            # future it still holds (with BrokenProcessPool), and futures
            # resubmitted on a fresh executor mid-round finish normally —
            # condemning them here would burn attempts on tasks that are
            # still running fine.
        if broken and self.pool.rebuild_if_broken() and self.do_capture:
            obs_metrics.count("pool.worker_deaths")
            obs_metrics.count("pool.rebuilds")
        return broken

    # ------------------------------------------------------------------
    def _record_success(
        self,
        index: int,
        outcome: Any,
        dispatched_time: float,
        *,
        speculative_win: bool = False,
    ) -> None:
        from ..obs import metrics as obs_metrics
        from ..obs import remote as obs_remote  # noqa: F401 - doc symmetry

        if self.do_capture:
            result, bundle = outcome
            self.results[index] = result
            roundtrip_s = time.perf_counter() - dispatched_time
            self.bundles.append(bundle)
            self.stats.append(_bundle_stats(bundle, roundtrip_s))
            obs_metrics.count("pool.tasks_completed")
            obs_metrics.observe("pool.task_roundtrip_s", roundtrip_s)
            obs_metrics.observe("pool.task_exec_s", bundle.wall_s)
            obs_metrics.observe(
                "pool.task_queue_s", max(0.0, roundtrip_s - bundle.wall_s)
            )
            if speculative_win:
                obs_metrics.count("pool.speculative_wins")
        else:
            self.results[index] = outcome

    def _record_failure(
        self, index: int, error: BaseException, dispatched_time: float
    ) -> None:
        from ..obs import metrics as obs_metrics
        from ..obs import remote as obs_remote

        self.failed.append(index)
        self.errors[index] = error
        if self.on_failure is not None:
            self.results[index] = self.on_failure(
                index, error, self.attempts[index]
            )
        if self.do_capture:
            obs_metrics.count("pool.tasks_failed")
            bundle = obs_remote.bundle_from_error(error)
            if bundle is not None:
                self.bundles.append(bundle)
                self.stats.append(
                    _bundle_stats(
                        bundle,
                        time.perf_counter() - dispatched_time,
                        ok=False,
                    )
                )

    def _note_infra_failure(self, index: int, *, charge_stage: bool = True) -> None:
        """An attempt of ``index`` took infrastructure down with it.

        ``charge_stage=False`` records the per-index failure (quarantine
        accounting) without incrementing the stage-wide breaker total —
        used for the collateral victims of a pool break that has already
        been charged once.
        """
        from ..obs import events as obs_events
        from ..obs import metrics as obs_metrics

        self.infra_failures[index] += 1
        if charge_stage:
            self.infra_failures_total += 1
        deadline = self.deadline
        if (
            deadline is None
            or deadline.quarantine_after < 1
            or index in self.quarantined
            or self.infra_failures[index] < deadline.quarantine_after
        ):
            return
        self.quarantined.add(index)
        if self.do_capture:
            obs_metrics.count("pool.quarantined_shards")
        obs_events.emit(
            obs_events.SHARD_QUARANTINE,
            severity="warning",
            source=self.label,
            shard=index,
            infra_failures=self.infra_failures[index],
        )

    def _maybe_degrade(self) -> None:
        """Trip the stage-wide circuit breaker when failure rates warrant."""
        from ..obs import events as obs_events
        from ..obs import metrics as obs_metrics

        deadline = self.deadline
        if self.degraded or deadline is None or deadline.degrade_min_failures < 1:
            return
        if self.infra_failures_total < deadline.degrade_min_failures:
            return
        ratio = self.infra_failures_total / max(1, self.dispatched_total)
        if ratio < deadline.degrade_failure_ratio:
            return
        self.degraded = True
        if self.do_capture:
            obs_metrics.count("pool.degraded")
        obs_events.emit(
            obs_events.POOL_DEGRADED,
            severity="critical",
            source=self.label,
            infra_failures=self.infra_failures_total,
            dispatched=self.dispatched_total,
            failure_ratio=round(ratio, 4),
        )

    def _enforce_hard_deadline(
        self,
        now: float,
        outstanding: Set[Any],
        future_of: Dict[Any, int],
        dispatched_at: Dict[Any, float],
        attempt_of: Dict[Any, int],
        resolved: Set[int],
    ) -> bool:
        """Kill the pool when any task has blown its hard deadline.

        ``ProcessPoolExecutor`` offers no per-task cancellation once a task
        is on a worker, and a *hung* worker never honours a graceful
        shutdown — so enforcement is pool-wide: SIGKILL every worker, fail
        the overdue tasks with :class:`TaskTimeoutError` (these count
        toward quarantine), and fail the innocents that were merely in
        flight with a collateral error (these do not).  All of them retry
        on the rebuilt executor, subject to their remaining attempts.
        Returns whether enforcement happened.
        """
        from ..obs import events as obs_events
        from ..obs import metrics as obs_metrics

        hard = self.deadline.hard_timeout_s
        if hard is None:
            return False
        overdue: Dict[int, Any] = {}
        for future in outstanding:
            index = future_of[future]
            if index in resolved or index in overdue:
                continue
            if now - dispatched_at[future] > hard:
                overdue[index] = future
        if not overdue:
            return False
        for index in sorted(overdue):
            future = overdue[index]
            error = TaskTimeoutError(
                self.label, index, attempt_of[future], hard
            )
            if self.do_capture:
                obs_metrics.count("pool.task_timeouts")
            obs_events.emit(
                obs_events.TASK_TIMEOUT,
                severity="critical",
                source=self.label,
                shard=index,
                attempt=attempt_of[future],
                timeout_s=hard,
            )
            self._note_infra_failure(index)
            self._record_failure(index, error, dispatched_at[future])
            resolved.add(index)
        for future in sorted(
            outstanding, key=lambda f: (future_of[f], dispatched_at[f])
        ):
            index = future_of[future]
            if index in resolved:
                continue
            error = RuntimeError(
                f"task {self.label!r} shard {index} was in flight when the "
                f"deadline watchdog killed the worker pool"
            )
            self._record_failure(index, error, dispatched_at[future])
            resolved.add(index)
        self.pool.kill()
        if self.do_capture:
            obs_metrics.count("pool.worker_deaths")
            obs_metrics.count("pool.rebuilds")
        return True

    def _maybe_speculate(
        self,
        now: float,
        outstanding: Set[Any],
        future_of: Dict[Any, int],
        dispatched_at: Dict[Any, float],
        inflight: Dict[int, Set[Any]],
        resolved: Set[int],
        speculated: Set[int],
        dispatch: Callable[..., Any],
    ) -> None:
        """Dispatch one speculative twin per straggling task.

        The twin runs the same attempt number — it is a duplicate of the
        attempt, not a new one — and whichever copy finishes first settles
        the index; the loser is dropped entirely (result and telemetry
        bundle), so speculation can never change results or merged state.
        """
        from ..obs import events as obs_events
        from ..obs import metrics as obs_metrics

        deadline = self.deadline
        if not deadline.speculative:
            return
        histogram = None
        if self.do_capture:
            histogram = obs_metrics.global_registry().histograms.get(
                "pool.task_exec_s"
            )
        threshold = deadline.straggler_threshold_s(histogram)
        if threshold is None:
            return
        for future in sorted(
            outstanding, key=lambda f: (future_of[f], dispatched_at[f])
        ):
            index = future_of[future]
            if (
                index in resolved
                or index in speculated
                or index in self.quarantined
                or len(inflight[index]) > 1
            ):
                continue
            if now - dispatched_at[future] <= threshold:
                continue
            speculated.add(index)
            if self.do_capture:
                obs_metrics.count("pool.speculative_dispatched")
            obs_events.emit(
                obs_events.SPECULATIVE_DISPATCH,
                severity="info",
                source=self.label,
                shard=index,
                attempt=self.attempts[index],
                age_s=round(now - dispatched_at[future], 4),
                threshold_s=round(threshold, 4),
            )
            outstanding.add(dispatch(index, speculative=True))

    # ------------------------------------------------------------------
    def _next_backoff(self) -> float:
        delay = _decorrelated_backoff(
            self.retry_backoff_s, self._backoff_prev, self._rng
        )
        self._backoff_prev = max(delay, self.retry_backoff_s)
        return delay


# ----------------------------------------------------------------------
# the process-wide persistent pools
# ----------------------------------------------------------------------
_POOLS: Dict[int, WorkerPool] = {}


def get_pool(workers: int) -> WorkerPool:
    """The process-wide persistent pool for ``workers`` worker processes.

    Created on first request and kept for the life of the process (one
    pool per distinct worker count), so repeated ``run_many`` calls and
    sharded stages reuse warm workers instead of re-spawning.
    """
    if workers < 1:
        raise ValueError("a pool needs at least one worker")
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _POOLS[workers] = WorkerPool(workers)
    return pool


def warm_pool(workers: int) -> WorkerPool:
    """Spawn (or re-spawn) the persistent pool's workers right now."""
    pool = get_pool(workers)
    pool.warm()
    return pool


@atexit.register
def shutdown_pools() -> None:
    """Stop every persistent pool (atexit hook; callable from tests)."""
    for pool in _POOLS.values():
        pool.shutdown()


def _worker_barrier(index: int) -> int:
    """No-op task used by :meth:`WorkerPool.warm` to force spawning."""
    return index


# ----------------------------------------------------------------------
# run_many
# ----------------------------------------------------------------------
def run_many(
    specs: Sequence[Any],
    *,
    workers: int = 1,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    pool: Optional[WorkerPool] = None,
    deadline: Optional[TaskDeadline] = None,
) -> List[Any]:
    """Execute many specs, optionally across persistent worker processes.

    Results come back in spec order, one entry per spec: a
    :class:`RunArtifacts` on success, a :class:`RunFailure` once a spec has
    failed ``max_attempts`` times.  ``workers <= 1`` — or a batch of one —
    short-circuits to a serial loop in this process that creates no pool at
    all (cheapest for small batches and the only option on single-CPU
    hosts); otherwise the batch runs on the process-wide persistent pool
    for ``workers`` (or the explicit ``pool``), spawning workers only on
    first use.

    A dead worker breaks the whole executor, so every spec still in flight
    counts one failed attempt, the executor is rebuilt, and the survivors
    are resubmitted after a decorrelated-jitter backoff — an innocent spec
    sharing a pool with a crashing one is retried, not condemned.  The
    retry round after a break runs its survivors one at a time, so a repeat
    killer burns only its own remaining attempts, never an innocent's.  A
    break that races the submission loop itself costs nothing: the submit
    raises instead of returning a future, and the spec — which never
    reached a worker — is resubmitted on a rebuilt executor without burning
    an attempt.  The backoff never runs after a final failure: once no spec
    has attempts left there is nothing to wait for.

    ``deadline`` (or the process default — see
    :mod:`repro.engine.deadline`) additionally bounds completion under
    partial failure: hung workers are killed at ``hard_timeout_s`` and the
    spec fails that attempt with :class:`TaskTimeoutError`; stragglers are
    speculatively re-dispatched; a spec that keeps taking workers down is
    quarantined to in-process execution; and a stage-wide failure-rate
    breaker degrades the whole batch to serial.  With no deadline in force
    the loop blocks unbounded, exactly as before.

    Pooled batches run under worker-side telemetry capture unless the
    ``REPRO_OBS_CAPTURE`` kill switch disables it: each spec's span
    subtree, metric deltas, and capture-level events ship back with its
    artifacts and merge into this process's live observability surfaces,
    the pool records its health metrics, and the batch lands in the run
    report (:mod:`repro.obs.report`) as a ``run.many`` stage.  The serial
    short-circuit records nothing — in-process runs are already fully
    observable.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be at least 1")
    if retry_backoff_s < 0:
        raise ValueError("retry_backoff_s cannot be negative")
    specs = list(specs)
    results: List[Any] = [None] * len(specs)
    if workers <= 1 or len(specs) <= 1:
        for index, spec in enumerate(specs):
            results[index] = _run_serial(spec, max_attempts, retry_backoff_s)
        return results

    from ..obs import remote as obs_remote

    if pool is None:
        pool = get_pool(workers)
    do_capture = obs_remote.capture_enabled()
    if deadline is None:
        deadline = deadline_mod.get_default_deadline()
    faults_on = chaos_infra.configured()

    def submit_pooled(index: int, attempt: int, on_rebuild):
        if faults_on:
            task = _pool_execute_faulty_captured if do_capture else _pool_execute_faulty
            return pool.submit_resilient(
                task, specs[index], index, attempt, on_rebuild=on_rebuild
            )
        if do_capture:
            return pool.submit_resilient(
                _pool_execute_captured,
                specs[index],
                index,
                attempt,
                on_rebuild=on_rebuild,
            )
        return pool.submit_resilient(
            _pool_execute, specs[index], on_rebuild=on_rebuild
        )

    driver = _StageDriver(
        pool,
        len(specs),
        label="run.many",
        do_capture=do_capture,
        max_attempts=max_attempts,
        retry_backoff_s=retry_backoff_s,
        deadline=deadline,
        submit_pooled=submit_pooled,
        run_inline=lambda index: execute(specs[index]),
        on_failure=lambda index, error, attempts_used: _failure(
            specs[index], error, attempts_used
        ),
        raise_on_exhaust=False,
    )
    return driver.run()


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _run_serial(spec: Any, max_attempts: int, retry_backoff_s: float) -> Any:
    """One spec in-process, with the same bounded retry + backoff.

    The backoff runs between attempts, never after the last one — the
    final failure returns immediately.
    """
    for attempt in range(1, max_attempts + 1):
        try:
            return execute(spec)
        except Exception as error:  # noqa: BLE001
            failure = _failure(spec, error, attempt)
            if attempt < max_attempts:
                time.sleep(retry_backoff_s * (2 ** (attempt - 1)))
    return failure


def _failure(spec: Any, error: BaseException, attempts: int) -> RunFailure:
    return RunFailure(
        spec=spec,
        error_type=type(error).__name__,
        error=str(error) or repr(error),
        attempts=attempts,
    )


def _pool_is_broken(error: BaseException) -> bool:
    """Did this exception take the whole executor down with it?"""
    from concurrent.futures.process import BrokenProcessPool

    return isinstance(error, BrokenProcessPool)
