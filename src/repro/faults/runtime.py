"""Runtime faults and recovery for the reshaping runtime.

The paper's Sec. 4 runtime simulates a failure-free fleet: every conversion
lands instantly and no server ever dies.  This module extends
:class:`~repro.reshaping.runtime.ReshapingRuntime` with the failure modes a
production fleet actually has:

* **server failures** — a :class:`ServerFailureSchedule` takes groups of LC
  or Batch servers offline for contiguous windows;
* **flaky conversions** — a :class:`ConversionFaultModel` gives every
  conversion a landing latency and a per-attempt failure probability with
  bounded retry/backoff; servers mid-conversion idle in neither pool;
* **emergency capping fallback** — whenever a scenario's ``total_power``
  exceeds the budget, the hierarchical capping loop
  (:class:`~repro.infra.capping.CappingSimulator`) sheds the excess by
  service class down to the policy floors, with a forced-shutdown last
  resort, so the recovered scenario reports ``overload_steps() == 0`` and
  zero breaker trips by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..obs import events as obs_events
from ..infra.assignment import Assignment
from ..infra.breaker import BreakerModel, BreakerTrip
from ..infra.capping import CappingPolicy, CappingReport, CappingSimulator
from ..infra.topology import PowerNode, PowerTopology
from ..reshaping.conversion import ConversionPolicy
from ..reshaping.runtime import FleetDescription, ReshapingRuntime, ScenarioResult
from ..sim.demand import DemandTrace
from ..traces.grid import TimeGrid
from ..traces.instance import ServiceKind
from ..traces.series import PowerTrace
from ..traces.traceset import TraceSet

#: Pools a failure event can hit.
LC_POOL = "lc"
BATCH_POOL = "batch"


@dataclass(frozen=True)
class FailureEvent:
    """One group of servers offline for a contiguous window."""

    start_index: int
    duration_samples: int
    n_servers: int
    pool: str = LC_POOL

    def __post_init__(self) -> None:
        if self.start_index < 0:
            raise ValueError("start_index cannot be negative")
        if self.duration_samples <= 0:
            raise ValueError("duration_samples must be positive")
        if self.n_servers <= 0:
            raise ValueError("n_servers must be positive")
        if self.pool not in (LC_POOL, BATCH_POOL):
            raise ValueError(f"pool must be {LC_POOL!r} or {BATCH_POOL!r}")


@dataclass(frozen=True)
class ServerFailureSchedule:
    """When and where servers die over the simulated span."""

    events: Tuple[FailureEvent, ...] = ()

    def lost_servers(self, n_samples: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-step offline counts ``(lc_lost, batch_lost)``."""
        lc = np.zeros(n_samples)
        batch = np.zeros(n_samples)
        for event in self.events:
            stop = min(event.start_index + event.duration_samples, n_samples)
            if event.start_index >= n_samples:
                continue
            target = lc if event.pool == LC_POOL else batch
            target[event.start_index : stop] += event.n_servers
        return lc, batch

    def downtime_server_steps(self, n_samples: int) -> float:
        lc, batch = self.lost_servers(n_samples)
        return float(lc.sum() + batch.sum())

    @classmethod
    def random(
        cls,
        grid: TimeGrid,
        *,
        n_lc: int,
        n_batch: int,
        events_per_week: float = 4.0,
        mean_duration_hours: float = 4.0,
        group_fraction: float = 0.02,
        seed: int = 0,
    ) -> "ServerFailureSchedule":
        """Poisson failure arrivals sized like rack-level outages.

        Each event takes roughly ``group_fraction`` of its pool offline for
        an exponentially-distributed window.  Events are split between the
        pools in proportion to their size.
        """
        if events_per_week < 0 or mean_duration_hours <= 0:
            raise ValueError("need non-negative rate and positive duration")
        if not 0 < group_fraction <= 1:
            raise ValueError("group_fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        n_events = int(rng.poisson(events_per_week * grid.n_weeks))
        total = max(n_lc + n_batch, 1)
        mean_duration_samples = max(
            1, int(round(mean_duration_hours * 60 / grid.step_minutes))
        )
        events: List[FailureEvent] = []
        for _ in range(n_events):
            pool = LC_POOL if rng.random() < n_lc / total else BATCH_POOL
            pool_size = n_lc if pool == LC_POOL else n_batch
            if pool_size == 0:
                continue
            group = max(1, int(round(group_fraction * pool_size)))
            duration = max(1, int(rng.exponential(mean_duration_samples)))
            start = int(rng.integers(0, grid.n_samples))
            events.append(
                FailureEvent(
                    start_index=start,
                    duration_samples=duration,
                    n_servers=group,
                    pool=pool,
                )
            )
        return cls(events=tuple(events))


@dataclass
class ConversionLog:
    """What happened to the conversions of one pool during a run."""

    n_transitions: int = 0
    n_failed_attempts: int = 0
    n_aborted: int = 0
    delayed_server_steps: float = 0.0


@dataclass(frozen=True)
class ConversionFaultModel:
    """Latency and failure semantics for conversion actions.

    A conversion *into* a pool takes ``latency_steps`` to land; each attempt
    fails with probability ``failure_prob`` and is retried after an
    exponential backoff (``backoff_steps`` doubling per retry), at most
    ``max_retries`` times.  If every attempt fails the transition aborts and
    the servers stay out of the pool until the next phase change.  Leaving a
    pool is immediate — stopping work needs no handshake.
    """

    latency_steps: int = 0
    failure_prob: float = 0.0
    max_retries: int = 3
    backoff_steps: int = 1

    def __post_init__(self) -> None:
        if self.latency_steps < 0:
            raise ValueError("latency_steps cannot be negative")
        if not 0 <= self.failure_prob < 1:
            raise ValueError("failure_prob must be in [0, 1)")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.backoff_steps < 0:
            raise ValueError("backoff_steps cannot be negative")

    def realize(
        self, target: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, ConversionLog]:
        """The pool occupancy actually achieved for a target schedule.

        ``target`` is the desired per-step number of extra servers in the
        pool.  The realised schedule is pointwise at most the target:
        upward transitions lag by latency and retries (or abort), downward
        transitions apply immediately.
        """
        target = np.asarray(target, dtype=np.float64)
        realized = np.empty_like(target)
        log = ConversionLog()
        current = float(target[0])
        realized[0] = current
        pending_level: Optional[float] = None
        pending_ready = 0
        for t in range(1, len(target)):
            want = float(target[t])
            if want <= current:
                current = want
                pending_level = None
            else:
                if pending_level != want:
                    log.n_transitions += 1
                    failures = 0
                    while failures <= self.max_retries and (
                        rng.random() < self.failure_prob
                    ):
                        failures += 1
                    if failures > self.max_retries:
                        log.n_failed_attempts += failures
                        log.n_aborted += 1
                        pending_level = want
                        pending_ready = len(target) + 1  # never lands
                    else:
                        log.n_failed_attempts += failures
                        delay = (failures + 1) * self.latency_steps + sum(
                            self.backoff_steps * (2**i) for i in range(failures)
                        )
                        pending_level = want
                        pending_ready = t + delay
                if t >= pending_ready:
                    current = want
                    pending_level = None
            realized[t] = current
            log.delayed_server_steps += max(want - current, 0.0)
        return realized, log


@dataclass
class RecoveryReport:
    """Audit trail of the emergency fallback for one chaos run."""

    engaged: bool
    trips_before: List[BreakerTrip] = field(default_factory=list)
    trips_after: List[BreakerTrip] = field(default_factory=list)
    overload_steps_before: int = 0
    overload_steps_after: int = 0
    capping: Optional[CappingReport] = None
    forced_shutdown_watt_minutes: float = 0.0
    conversion_lc: Optional[ConversionLog] = None
    conversion_batch: Optional[ConversionLog] = None
    failure_downtime_server_steps: float = 0.0

    @property
    def lc_energy_shed(self) -> float:
        """LC watt-minutes shed by the capping fallback (QoS damage)."""
        return self.capping.lc_energy_shed if self.capping is not None else 0.0


@dataclass
class ChaosRunResult:
    """A recovered scenario plus how the runtime got there."""

    scenario: ScenarioResult
    raw: ScenarioResult
    recovery: RecoveryReport

    def power_safe(self, breaker: Optional[BreakerModel] = None) -> bool:
        breaker = breaker if breaker is not None else BreakerModel()
        trace = PowerTrace(
            self.scenario.grid, np.maximum(self.scenario.total_power, 0.0)
        )
        return not breaker.trips(trace, self.scenario.budget_watts)


class ChaosReshapingRuntime(ReshapingRuntime):
    """A :class:`ReshapingRuntime` that survives a hostile fleet.

    Layers server failures, flaky conversions, and the emergency capping
    fallback over the Sec. 4 scenarios.  With the default fault models
    (no failures, instant conversions) it reproduces the parent exactly.
    """

    def __init__(
        self,
        fleet: FleetDescription,
        conversion: ConversionPolicy,
        *,
        throttle=None,
        dvfs=None,
        failures: Optional[ServerFailureSchedule] = None,
        conversion_faults: Optional[ConversionFaultModel] = None,
        breaker: Optional[BreakerModel] = None,
        capping_policy: Optional[CappingPolicy] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(fleet, conversion, throttle=throttle, dvfs=dvfs)
        self.failures = failures if failures is not None else ServerFailureSchedule()
        self.conversion_faults = (
            conversion_faults if conversion_faults is not None else ConversionFaultModel()
        )
        self.breaker = breaker if breaker is not None else BreakerModel()
        self.capping_policy = (
            capping_policy if capping_policy is not None else CappingPolicy()
        )
        self.seed = seed

    # ------------------------------------------------------------------
    def run_conversion_chaos(
        self, demand: DemandTrace, extra_servers: int
    ) -> ChaosRunResult:
        """The conversion scenario under runtime faults, then recovered."""
        self._check_extra(extra_servers)
        n_samples = demand.grid.n_samples
        _, n_lc_active, n_batch_active, _ = self.conversion_plan(
            demand, extra_servers
        )

        rng = np.random.default_rng([self.seed, 0xC0])
        realized_lc, log_lc = self.conversion_faults.realize(
            n_lc_active - self.fleet.n_lc, rng
        )
        realized_batch, log_batch = self.conversion_faults.realize(
            n_batch_active - self.fleet.n_batch, rng
        )
        # Extras neither serving LC nor running batch idle mid-conversion.
        parked = np.maximum(extra_servers - realized_lc - realized_batch, 0.0)

        lc_lost, batch_lost = self.failures.lost_servers(n_samples)
        n_lc = np.maximum(self.fleet.n_lc + realized_lc - lc_lost, 0.0)
        n_batch = np.maximum(self.fleet.n_batch + realized_batch - batch_lost, 0.0)

        for pool, log in ((LC_POOL, log_lc), (BATCH_POOL, log_batch)):
            obs_events.emit(
                obs_events.CONVERSION,
                severity="warning" if log.n_aborted else "info",
                source="faults.conversion",
                pool=pool,
                transitions=log.n_transitions,
                failed_attempts=log.n_failed_attempts,
                aborted=log.n_aborted,
                delayed_server_steps=log.delayed_server_steps,
            )
        if self.failures.events:
            obs_events.emit(
                obs_events.FAULT_INJECTION,
                severity="warning",
                source="faults.failures",
                fault="server_failures",
                events=len(self.failures.events),
                downtime_server_steps=self.failures.downtime_server_steps(n_samples),
            )

        raw = self._assemble(
            "conversion_chaos",
            demand,
            n_lc_active=n_lc,
            n_batch_active=n_batch,
            batch_freq=np.ones(n_samples),
            parked=parked,
        )
        result = self.recover(raw)
        result.recovery.conversion_lc = log_lc
        result.recovery.conversion_batch = log_batch
        result.recovery.failure_downtime_server_steps = (
            self.failures.downtime_server_steps(n_samples)
        )
        return result

    def run_throttle_boost_chaos(
        self,
        demand: DemandTrace,
        extra_conversion: int,
        extra_throttle_funded: Optional[int] = None,
    ) -> ChaosRunResult:
        """The throttle/boost scenario run clean, then recovered.

        Throttling and boosting are datacenter-initiated DVFS writes, which
        in practice succeed; the interesting faults are the conversions and
        failures exercised by :meth:`run_conversion_chaos`.  This entry
        point still routes the boosted scenario through the emergency
        fallback so a mis-sized budget cannot trip a breaker.
        """
        scenario = self.run_throttle_boost(
            demand, extra_conversion, extra_throttle_funded
        )
        return self.recover(scenario)

    # ------------------------------------------------------------------
    # emergency fallback
    # ------------------------------------------------------------------
    def recover(self, scenario: ScenarioResult) -> ChaosRunResult:
        """Route an over-budget scenario through the capping fallback.

        Decomposes ``total_power`` into LC / batch / other components,
        invokes the hierarchical capping loop on a one-node tree carrying
        the scenario budget, and rebuilds the scenario from the capped
        components.  Any residual the class floors cannot shed is removed
        by forced shutdown (recorded, never silent), so the recovered
        scenario satisfies ``overload_steps() == 0`` by construction.
        """
        trace = PowerTrace(scenario.grid, np.maximum(scenario.total_power, 0.0))
        trips_before = self.breaker.trips(trace, scenario.budget_watts, "dc")
        overload_before = scenario.overload_steps()
        if overload_before == 0:
            return ChaosRunResult(
                scenario=scenario,
                raw=scenario,
                recovery=RecoveryReport(
                    engaged=False,
                    trips_before=trips_before,
                    overload_steps_before=0,
                ),
            )

        for trip in trips_before:
            obs_events.emit(
                obs_events.BREAKER_TRIP,
                severity="critical",
                source="faults.recover",
                node=trip.node_name,
                scenario=scenario.name,
                start_index=trip.start_index,
                duration_samples=trip.duration_samples,
                peak_overload_watts=trip.peak_overload_watts,
            )
        lc_power, batch_power, other_power = self._components(scenario)
        report, capped = self._run_capping(
            scenario, lc_power, batch_power, other_power
        )
        capped_lc = capped.row("lc").copy()
        capped_batch = capped.row("batch").copy()
        capped_other = capped.row("other").copy()

        total = capped_lc + capped_batch + capped_other
        # Forced shutdown: whatever the floors protect beyond the budget is
        # powered off outright (the breaker would take it anyway).
        forced = np.maximum(total - scenario.budget_watts, 0.0)
        if np.any(forced > 0):
            for component in (capped_batch, capped_other, capped_lc):
                shed = np.minimum(component, forced)
                component -= shed
                forced -= shed
            total = capped_lc + capped_batch + capped_other
        forced_total = float(
            np.maximum(
                capped.row("lc") + capped.row("batch") + capped.row("other")
                - scenario.budget_watts,
                0.0,
            ).sum()
        ) * scenario.grid.step_minutes
        if forced_total < 1e-6:  # numerical crumbs, not real shutdowns
            forced_total = 0.0

        recovered = self._rebuild(
            scenario, lc_power, batch_power, capped_lc, capped_batch, total
        )
        trips_after = self.breaker.trips(
            PowerTrace(scenario.grid, np.maximum(recovered.total_power, 0.0)),
            scenario.budget_watts,
            "dc",
        )
        obs_events.emit(
            obs_events.CAPPING,
            severity="warning",
            source="faults.recover",
            scenario=scenario.name,
            overload_steps_before=overload_before,
            overload_steps_after=recovered.overload_steps(),
            trips_before=len(trips_before),
            trips_after=len(trips_after),
            lc_energy_shed=report.lc_energy_shed,
            forced_shutdown_watt_minutes=forced_total,
        )
        return ChaosRunResult(
            scenario=recovered,
            raw=scenario,
            recovery=RecoveryReport(
                engaged=True,
                trips_before=trips_before,
                trips_after=trips_after,
                overload_steps_before=overload_before,
                overload_steps_after=recovered.overload_steps(),
                capping=report,
                forced_shutdown_watt_minutes=forced_total,
            ),
        )

    # ------------------------------------------------------------------
    def _components(
        self, scenario: ScenarioResult
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split a scenario's total power into LC / batch / other draw."""
        lc_power = scenario.n_lc_active * self.fleet.lc_model.power(
            scenario.per_server_load
        )
        batch_power = scenario.n_batch_active * self.fleet.batch_model.power(
            1.0, scenario.batch_freq
        )
        other_power = scenario.total_power - lc_power - batch_power
        return lc_power, batch_power, np.maximum(other_power, 0.0)

    def _run_capping(
        self,
        scenario: ScenarioResult,
        lc_power: np.ndarray,
        batch_power: np.ndarray,
        other_power: np.ndarray,
    ) -> Tuple[CappingReport, TraceSet]:
        root = PowerNode(
            "dc", level="datacenter", budget_watts=scenario.budget_watts
        )
        topology = PowerTopology(root)
        assignment = Assignment(
            topology, {"lc": "dc", "batch": "dc", "other": "dc"}
        )
        traces = TraceSet(
            scenario.grid,
            ["lc", "batch", "other"],
            np.vstack(
                [
                    np.maximum(lc_power, 0.0),
                    np.maximum(batch_power, 0.0),
                    other_power,
                ]
            ),
        )
        kinds = {
            "lc": ServiceKind.LATENCY_CRITICAL,
            "batch": ServiceKind.BATCH,
            "other": ServiceKind.OTHER,
        }
        simulator = CappingSimulator(
            topology, assignment, traces, kinds, policy=self.capping_policy
        )
        return simulator.run_capped()

    def _rebuild(
        self,
        scenario: ScenarioResult,
        lc_before: np.ndarray,
        batch_before: np.ndarray,
        lc_after: np.ndarray,
        batch_after: np.ndarray,
        total: np.ndarray,
    ) -> ScenarioResult:
        """A copy of ``scenario`` with throughput scaled to the capped power."""
        with np.errstate(divide="ignore", invalid="ignore"):
            lc_ratio = np.where(lc_before > 0, lc_after / lc_before, 1.0)
            batch_ratio = np.where(
                batch_before > 0, batch_after / batch_before, 1.0
            )
        lc_served = scenario.lc_served * lc_ratio
        return ScenarioResult(
            name=scenario.name,
            grid=scenario.grid,
            budget_watts=scenario.budget_watts,
            demand=scenario.demand.copy(),
            lc_served=lc_served,
            lc_dropped=np.maximum(scenario.demand - lc_served, 0.0),
            load_on_original=scenario.load_on_original.copy(),
            per_server_load=scenario.per_server_load * lc_ratio,
            n_lc_active=scenario.n_lc_active.copy(),
            n_batch_active=scenario.n_batch_active.copy(),
            batch_throughput=scenario.batch_throughput * batch_ratio,
            batch_freq=scenario.batch_freq.copy(),
            total_power=total,
            parked=(
                scenario.parked.copy() if scenario.parked is not None else None
            ),
        )
