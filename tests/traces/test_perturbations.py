"""Unit tests for trace perturbations (surges, outages)."""

import numpy as np
import pytest

from repro.traces import TimeGrid, TraceSet, inject_outage, inject_surge, window_mask


@pytest.fixture
def fleet():
    grid = TimeGrid.for_days(2, step_minutes=60)
    values = 100 + 50 * np.sin(np.linspace(0, 4 * np.pi, 48))
    return TraceSet(
        grid,
        ["a", "b"],
        np.vstack([values, np.full(48, 80.0)]),
    )


class TestWindowMask:
    def test_simple_window(self, fleet):
        mask = window_mask(fleet, 9, 17)
        hours = fleet.grid.hours_of_day()
        assert np.array_equal(mask, (hours >= 9) & (hours < 17))

    def test_wrapping_window(self, fleet):
        mask = window_mask(fleet, 22, 2)
        hours = fleet.grid.hours_of_day()
        assert np.array_equal(mask, (hours >= 22) | (hours < 2))

    def test_day_restriction(self, fleet):
        mask = window_mask(fleet, 0, 24, days=[0])
        days = fleet.grid.days_of_week()
        assert np.array_equal(mask, days == 0)


class TestSurge:
    def test_scales_dynamic_power_in_window(self, fleet):
        surged = inject_surge(fleet, ["a"], factor=2.0, start_hour=9, end_hour=17)
        mask = window_mask(fleet, 9, 17)
        idle = fleet.row("a").min()
        expected = idle + (fleet.row("a") - idle) * 2.0
        assert np.allclose(surged.row("a")[mask], expected[mask])
        assert np.allclose(surged.row("a")[~mask], fleet.row("a")[~mask])

    def test_untouched_instances(self, fleet):
        surged = inject_surge(fleet, ["a"], factor=2.0, start_hour=9, end_hour=17)
        assert np.array_equal(surged.row("b"), fleet.row("b"))

    def test_original_not_mutated(self, fleet):
        before = fleet.matrix.copy()
        inject_surge(fleet, ["a"], factor=3.0, start_hour=0, end_hour=24)
        assert np.array_equal(fleet.matrix, before)

    def test_factor_one_is_identity(self, fleet):
        surged = inject_surge(fleet, ["a", "b"], factor=1.0, start_hour=0, end_hour=24)
        assert np.allclose(surged.matrix, fleet.matrix)

    def test_unknown_instance_rejected(self, fleet):
        with pytest.raises(ValueError):
            inject_surge(fleet, ["ghost"], factor=2.0, start_hour=9, end_hour=17)

    def test_negative_factor_rejected(self, fleet):
        with pytest.raises(ValueError):
            inject_surge(fleet, ["a"], factor=-1.0, start_hour=9, end_hour=17)

    def test_flat_trace_unchanged(self, fleet):
        """A flat trace has no dynamic power: surging it is a no-op."""
        surged = inject_surge(fleet, ["b"], factor=5.0, start_hour=0, end_hour=24)
        assert np.allclose(surged.row("b"), fleet.row("b"))


class TestOutage:
    def test_zeroes_window(self, fleet):
        failed = inject_outage(fleet, ["a"], start_index=10, duration_samples=5)
        assert np.allclose(failed.row("a")[10:15], 0.0)
        assert np.array_equal(failed.row("a")[:10], fleet.row("a")[:10])
        assert np.array_equal(failed.row("b"), fleet.row("b"))

    def test_bounds_checked(self, fleet):
        with pytest.raises(ValueError):
            inject_outage(fleet, ["a"], start_index=40, duration_samples=20)
        with pytest.raises(ValueError):
            inject_outage(fleet, ["a"], start_index=0, duration_samples=0)

    def test_unknown_instance_rejected(self, fleet):
        with pytest.raises(ValueError):
            inject_outage(fleet, ["nope"], start_index=0, duration_samples=1)
