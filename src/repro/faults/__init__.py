"""Fault injection & chaos testing: keep the planner power-safe on dirty data.

The paper assumes three weeks of clean per-minute telemetry and a fleet
where every runtime action succeeds.  This package drops both assumptions:

* :mod:`repro.faults.inject` — telemetry fault injectors (sensor dropout,
  stuck-at readings, spikes, negative glitches, clock skew) over a
  permissive :class:`RawTelemetry` container;
* :mod:`repro.faults.repair` — the explicit sanitisation gate back to the
  strict :class:`~repro.traces.traceset.TraceSet` world, with a full audit
  trail of what was repaired;
* :mod:`repro.faults.runtime` — server-failure schedules, flaky conversion
  actions with bounded retry/backoff, and the emergency capping fallback
  that keeps ``overload_steps() == 0`` by construction;
* :mod:`repro.faults.harness` — named chaos scenarios driving the whole
  pipeline (synthesize → inject → repair → place → reshape) and reporting
  breaker trips, LC energy shed, dropped demand, and placement-quality
  deltas against clean inputs.
"""

from .harness import (
    DEFAULT_SUITE,
    QUALITY_TOLERANCE,
    ChaosScenario,
    ChaosScenarioOutcome,
    format_chaos_table,
    run_chaos_scenario,
    run_chaos_suite,
    scenario_by_name,
)
from .inject import (
    FaultPlan,
    GridMisalignment,
    NegativeGlitch,
    PowerSpike,
    RawTelemetry,
    SensorDropout,
    StuckSensor,
    dirty_copy,
)
from .repair import (
    RepairOutcome,
    RepairPolicy,
    RepairReport,
    realign,
    repair_telemetry,
)
from .runtime import (
    ChaosReshapingRuntime,
    ChaosRunResult,
    ConversionFaultModel,
    ConversionLog,
    FailureEvent,
    RecoveryReport,
    ServerFailureSchedule,
)

__all__ = [
    "DEFAULT_SUITE",
    "QUALITY_TOLERANCE",
    "ChaosScenario",
    "ChaosScenarioOutcome",
    "ChaosReshapingRuntime",
    "ChaosRunResult",
    "ConversionFaultModel",
    "ConversionLog",
    "FailureEvent",
    "FaultPlan",
    "GridMisalignment",
    "NegativeGlitch",
    "PowerSpike",
    "RawTelemetry",
    "RecoveryReport",
    "RepairOutcome",
    "RepairPolicy",
    "RepairReport",
    "SensorDropout",
    "ServerFailureSchedule",
    "StuckSensor",
    "dirty_copy",
    "format_chaos_table",
    "realign",
    "repair_telemetry",
    "run_chaos_scenario",
    "run_chaos_suite",
    "scenario_by_name",
]
