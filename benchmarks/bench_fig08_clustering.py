"""Figure 8: k-means clusters in asynchrony-score space, projected by t-SNE.

Paper: instances of one DC1 suite embedded into the |B|-dimensional
asynchrony space separate into well-defined clusters of synchronous
instances.
"""

import numpy as np
import pytest

from repro.analysis import experiments as E
from repro.analysis.report import format_table


def _run(full_scale):
    dc = E.get_datacenter("DC1", **full_scale)
    return E.run_figure8(dc, suite_index=0, k=6, max_points=300)


@pytest.mark.benchmark(group="figure8")
def test_fig08_clustering(benchmark, emit_report, full_scale):
    figure = benchmark.pedantic(_run, args=(full_scale,), rounds=1, iterations=1)

    sizes = figure.cluster_sizes()
    rows = [
        [f"cluster {i}", int(size)]
        for i, size in enumerate(sizes)
    ]
    table = format_table(
        ["cluster", "instances"],
        rows,
        title=(
            "Figure 8 — balanced k-means over asynchrony-score vectors "
            f"(basis: {', '.join(figure.basis_services[:6])}...)"
        ),
    )

    # Quantify cluster separation in the 2-D t-SNE projection: the ratio of
    # mean inter-centroid distance to mean within-cluster scatter.
    centroids = np.vstack(
        [figure.embedding[figure.labels == c].mean(axis=0) for c in range(len(sizes))]
    )
    scatter = np.mean(
        [
            np.linalg.norm(
                figure.embedding[figure.labels == c] - centroids[c], axis=1
            ).mean()
            for c in range(len(sizes))
        ]
    )
    inter = np.mean(
        [
            np.linalg.norm(centroids[i] - centroids[j])
            for i in range(len(sizes))
            for j in range(i + 1, len(sizes))
        ]
    )
    separation = inter / scatter if scatter > 0 else float("inf")
    emit_report(
        "fig08_clustering",
        table + f"\n\nt-SNE separation ratio (inter-centroid / within-cluster): {separation:.2f}",
    )

    assert sizes.max() - sizes.min() <= 1  # balanced clusters
    assert separation > 1.0  # clusters visibly separate, as in the figure
