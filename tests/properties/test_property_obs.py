"""Property-based tests: tracing never perturbs remapping semantics."""

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import obs
from repro.core import RemapConfig, RemappingEngine
from repro.infra import Assignment, Level, build_topology, two_level_spec
from repro.traces import TimeGrid, TraceSet

GRID = TimeGrid(0, 60, 24)


@st.composite
def remap_scenes(draw):
    """A random fleet on a random 2-4 leaf topology, contiguously placed."""
    leaves = draw(st.integers(2, 4))
    per_leaf = draw(st.integers(2, 4))
    n = leaves * per_leaf
    matrix = draw(
        hnp.arrays(
            dtype=np.float64,
            shape=(n, 24),
            elements=st.floats(0.1, 100, allow_nan=False, allow_infinity=False),
        )
    )
    topo = build_topology(two_level_spec("r", leaves=leaves, leaf_capacity=per_leaf))
    ids = [f"i{k}" for k in range(n)]
    traces = TraceSet(GRID, ids, matrix)
    leaf_names = topo.leaf_names()
    mapping = {ids[k]: leaf_names[k // per_leaf] for k in range(n)}
    return topo, Assignment(topo, mapping), traces


class TestTracedRemapInvariants:
    @given(scene=remap_scenes(), max_swaps=st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_traced_run_conserves_fleet(self, scene, max_swaps):
        """Under an active tracer the engine still conserves the multiset of
        placed instances and every node's member count."""
        topo, assignment, traces = scene
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=max_swaps))
        with obs.tracing() as tracer:
            result = engine.run(assignment, traces)
        assert Counter(result.assignment.instance_ids()) == Counter(
            assignment.instance_ids()
        )
        assert result.assignment.occupancy() == assignment.occupancy()
        # The run is recorded exactly once.
        span = tracer.find("remap")
        assert span is not None
        assert span.calls == 1

    @given(scene=remap_scenes(), max_swaps=st.integers(0, 10))
    @settings(max_examples=25, deadline=None)
    def test_traced_and_untraced_runs_agree(self, scene, max_swaps):
        """Tracing is observation only: identical swaps either way."""
        topo, assignment, traces = scene
        config = RemapConfig(level=Level.RPP, max_swaps=max_swaps)
        plain = RemappingEngine(config).run(assignment, traces)
        with obs.tracing():
            traced = RemappingEngine(config).run(assignment, traces)
        assert traced.assignment.as_mapping() == plain.assignment.as_mapping()
        assert traced.swaps == plain.swaps

    @given(scene=remap_scenes())
    @settings(max_examples=25, deadline=None)
    def test_swap_counters_are_consistent(self, scene):
        """accepted <= attempted, and accepted equals the reported swaps."""
        topo, assignment, traces = scene
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=8))
        with obs.tracing() as tracer:
            result = engine.run(assignment, traces)
        counters = tracer.find("remap").counters
        attempted = counters.get("remap.swaps_attempted", 0.0)
        accepted = counters.get("remap.swaps_accepted", 0.0)
        assert accepted <= attempted
        assert accepted == result.n_swaps

    @given(scene=remap_scenes())
    @settings(max_examples=15, deadline=None)
    def test_node_totals_consistent_under_tracing(self, scene):
        topo, assignment, traces = scene
        engine = RemappingEngine(RemapConfig(level=Level.RPP, max_swaps=8))
        with obs.tracing():
            result = engine.run(assignment, traces)
        for name, total in result.node_totals.items():
            fresh = np.zeros(GRID.n_samples)
            for instance_id in result.assignment.instances_under(name):
                fresh += traces.row(instance_id)
            np.testing.assert_allclose(total, fresh, rtol=0, atol=1e-9)
