"""Unit tests for the Γ-sum accounting (exact sums, incremental updates)."""

import numpy as np
import pytest

from repro.robust import (
    GammaAccountant,
    RobustHeadroomIndex,
    UncertainPowerModel,
    gamma_sum,
    robust_load,
    robust_node_headroom,
    robust_node_loads,
)
from repro.infra import Assignment


# ----------------------------------------------------------------------
# gamma_sum / robust_load
# ----------------------------------------------------------------------
def test_gamma_sum_is_the_top_gamma_total():
    radii = np.array([5.0, 1.0, 3.0, 2.0])
    assert gamma_sum(radii, 0) == 0.0
    assert gamma_sum(radii, 1) == 5.0
    assert gamma_sum(radii, 2) == 8.0
    assert gamma_sum(radii, 4) == 11.0
    assert gamma_sum(radii, 10) == 11.0  # Γ beyond the set: worst case
    assert gamma_sum(np.array([]), 3) == 0.0
    with pytest.raises(ValueError, match="negative"):
        gamma_sum(radii, -1)


def test_robust_load_adds_nominal_sum():
    nominal = np.array([10.0, 20.0])
    radii = np.array([4.0, 1.0])
    assert robust_load(nominal, radii, 0) == 30.0
    assert robust_load(nominal, radii, 1) == 34.0
    assert robust_load(nominal, radii, 2) == 35.0


# ----------------------------------------------------------------------
# GammaAccountant
# ----------------------------------------------------------------------
def test_accountant_matches_brute_force_over_random_churn(rng):
    """400 random add/remove steps, checked exactly against re-computation."""
    for gamma in (0, 1, 3, 7):
        acc = GammaAccountant(gamma)
        alive = {}
        counter = 0
        for _ in range(400):
            if alive and rng.random() < 0.4:
                victim = list(alive)[int(rng.integers(len(alive)))]
                acc.remove(victim)
                del alive[victim]
            else:
                iid = f"i{counter}"
                counter += 1
                nominal = float(rng.uniform(0, 200))
                radius = float(rng.uniform(0, 50))
                acc.add(iid, nominal, radius)
                alive[iid] = (nominal, radius)
            nominal_vec = np.array([v[0] for v in alive.values()])
            radius_vec = np.array([v[1] for v in alive.values()])
            expected = robust_load(nominal_vec, radius_vec, gamma)
            assert acc.robust_load() == pytest.approx(expected, abs=1e-6)
            assert acc.nominal_sum == pytest.approx(float(nominal_vec.sum()))
            assert acc.radius_sum == pytest.approx(float(radius_vec.sum()))


def test_accountant_load_if_added_is_hypothetical():
    acc = GammaAccountant(1)
    acc.add("a", 10.0, 5.0)
    probe = acc.load_if_added(20.0, 8.0)
    assert probe == pytest.approx(10.0 + 20.0 + 8.0)  # 8 evicts 5 from top-1
    assert acc.robust_load() == pytest.approx(15.0)  # unchanged
    assert acc.headroom(20.0) == pytest.approx(5.0)


def test_accountant_rejects_duplicates_and_unknowns():
    acc = GammaAccountant(2)
    acc.add("a", 1.0, 1.0)
    with pytest.raises(ValueError, match="already"):
        acc.add("a", 1.0, 1.0)
    with pytest.raises(KeyError):
        acc.remove("missing")
    with pytest.raises(ValueError, match="negative"):
        GammaAccountant(-1)


def test_accountant_recompute_restores_exact_sums():
    acc = GammaAccountant(2)
    for k in range(20):
        acc.add(f"i{k}", float(k), float(k % 7))
    top, nominal = acc.top_sum, acc.nominal_sum
    acc.recompute()
    assert acc.top_sum == pytest.approx(top)
    assert acc.nominal_sum == pytest.approx(nominal)


# ----------------------------------------------------------------------
# RobustHeadroomIndex
# ----------------------------------------------------------------------
@pytest.fixture
def small_index(tiny_topology):
    ids = [f"i{k}" for k in range(6)]
    model = UncertainPowerModel(
        ids, np.full(6, 100.0), np.array([10.0, 20.0, 30.0, 5.0, 5.0, 5.0])
    )
    return RobustHeadroomIndex(tiny_topology, model, 1), model


def test_index_place_updates_every_ancestor(small_index, tiny_topology):
    index, _ = small_index
    leaf = tiny_topology.leaves()[0]
    index.place("i0", leaf.name)
    index.place("i2", leaf.name)
    for name in index.path(leaf.name):
        # Γ=1: Σ nominal + max radius = 200 + 30
        assert index.robust_load(name) == pytest.approx(230.0)
    assert index.leaf_of("i2") == leaf.name
    assert index.as_mapping() == {"i0": leaf.name, "i2": leaf.name}


def test_index_remove_and_move_keep_ancestors_consistent(
    small_index, tiny_topology
):
    index, _ = small_index
    first, second = tiny_topology.leaves()[:2]
    index.place("i1", first.name)
    index.move("i1", second.name)
    assert index.robust_load(first.name) == 0.0
    assert index.robust_load(second.name) == pytest.approx(120.0)
    assert index.remove("i1") == second.name
    root = tiny_topology.root.name
    assert index.robust_load(root) == 0.0
    with pytest.raises(KeyError):
        index.leaf_of("i1")


def test_index_fits_and_slack_respect_budgets(small_index, tiny_topology):
    index, _ = small_index
    leaf = tiny_topology.leaves()[0]
    budgets = {leaf.name: 150.0}
    assert index.fits("i3", leaf.name, budgets)  # 105 <= 150
    index.place("i3", leaf.name)
    assert not index.fits("i0", leaf.name, budgets)  # 210 + 10 > 150
    assert index.slack_if_added("i0", leaf.name, budgets) < 0
    vector = index.slack_vector_if_added("i0", leaf.name, budgets)
    assert vector == (budgets[leaf.name] - index.accountants[leaf.name].load_if_added(100.0, 10.0),)


def test_index_slack_vector_is_sorted_ascending(small_index, tiny_topology):
    index, _ = small_index
    leaf = tiny_topology.leaves()[0]
    budgets = {name: 1000.0 - 10 * k for k, name in enumerate(index.path(leaf.name))}
    vector = index.slack_vector_if_added("i0", leaf.name, budgets)
    assert list(vector) == sorted(vector)
    assert len(vector) == len(index.path(leaf.name))


# ----------------------------------------------------------------------
# vectorised sweeps
# ----------------------------------------------------------------------
def test_vectorised_sweeps_agree_with_the_index(tiny_topology):
    leaves = tiny_topology.leaves()
    ids = [f"i{k}" for k in range(8)]
    model = UncertainPowerModel(
        ids, np.linspace(50, 120, 8), np.linspace(0, 35, 8)
    )
    mapping = {iid: leaves[k % len(leaves)].name for k, iid in enumerate(ids)}
    assignment = Assignment(tiny_topology, mapping)
    index = RobustHeadroomIndex(tiny_topology, model, 2)
    for iid, leaf_name in mapping.items():
        index.place(iid, leaf_name)

    loads = robust_node_loads(tiny_topology, assignment, model, 2)
    for name, load in loads.items():
        assert load == pytest.approx(index.robust_load(name))

    for node in tiny_topology.nodes():
        node.budget_watts = 400.0
    headroom = robust_node_headroom(tiny_topology, assignment, model, 2)
    for name, slack in headroom.items():
        assert slack == pytest.approx(400.0 - loads[name])
