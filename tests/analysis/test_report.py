"""Unit tests for text report rendering."""

import pytest

from repro.analysis import format_percent, format_series, format_table, sparkline


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.131) == "13.1%"

    def test_digits(self):
        assert format_percent(0.12345, digits=2) == "12.35%"

    def test_negative(self):
        assert format_percent(-0.05) == "-5.0%"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_title(self):
        table = format_table(["x"], [["1"]], title="My Table")
        assert table.splitlines()[0] == "My Table"
        assert table.splitlines()[1] == "========"

    def test_floats_formatted(self):
        table = format_table(["v"], [[1.23456]])
        assert "1.235" in table

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table


class TestSeries:
    def test_format_series_samples(self):
        text = format_series("s", list(range(100)), max_points=5)
        assert text.startswith("s: [")
        assert "(n=100)" in text

    def test_format_series_empty(self):
        assert "empty" in format_series("s", [])

    def test_sparkline_length(self):
        line = sparkline([1, 2, 3, 4, 5], width=5)
        assert len(line) == 5

    def test_sparkline_flat(self):
        line = sparkline([3, 3, 3])
        assert line == "▁▁▁"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_monotone(self):
        line = sparkline(list(range(8)), width=8)
        assert line == "▁▂▃▄▅▆▇█"
