"""Circuit-breaker model.

"When the aggregate power at a power node exceeds the power budget of that
node, after a short amount of time, the circuit breaker is tripped and the
power supply for the entire sub-tree is shut down" (Sec. 2.2).  Breakers
tolerate brief excursions; a trip requires the overload to persist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..obs import events as obs_events
from ..traces.series import PowerTrace
from .aggregation import NodePowerView


@dataclass(frozen=True)
class BreakerTrip:
    """One breaker trip event at a power node."""

    node_name: str
    start_index: int
    duration_samples: int
    peak_overload_watts: float


@dataclass(frozen=True)
class BreakerModel:
    """Trip detection parameters.

    ``tolerance_minutes`` is how long an overload must persist before the
    breaker opens; instantaneous blips below that are survived (production
    systems rely on power capping to shave them — Sec. 3.6).
    """

    tolerance_minutes: int = 10

    def __post_init__(self) -> None:
        if self.tolerance_minutes < 0:
            raise ValueError("tolerance cannot be negative")

    def trips(self, trace: PowerTrace, budget: float, node_name: str = "") -> List[BreakerTrip]:
        """All trip events for one node's aggregate trace against its budget."""
        if budget < 0:
            raise ValueError("budget cannot be negative")
        min_samples = max(
            1, int(np.ceil(self.tolerance_minutes / trace.grid.step_minutes))
        )
        over = trace.values > budget
        trips: List[BreakerTrip] = []
        run_start: Optional[int] = None
        for index, flag in enumerate(over):
            if flag and run_start is None:
                run_start = index
            elif not flag and run_start is not None:
                length = index - run_start
                if length >= min_samples:
                    trips.append(self._trip(trace, budget, node_name, run_start, length))
                run_start = None
        if run_start is not None:
            length = len(over) - run_start
            if length >= min_samples:
                trips.append(self._trip(trace, budget, node_name, run_start, length))
        return trips

    @staticmethod
    def _trip(
        trace: PowerTrace, budget: float, node_name: str, start: int, length: int
    ) -> BreakerTrip:
        segment = trace.values[start : start + length]
        return BreakerTrip(
            node_name=node_name,
            start_index=start,
            duration_samples=length,
            peak_overload_watts=float(segment.max() - budget),
        )


def audit_view(view: NodePowerView, model: Optional[BreakerModel] = None) -> Dict[str, List[BreakerTrip]]:
    """Trip events for every budgeted node in a power view.

    Nodes without budgets are skipped.  An empty dict means the placement is
    power-safe everywhere.
    """
    model = model if model is not None else BreakerModel()
    result: Dict[str, List[BreakerTrip]] = {}
    for node in view.topology.nodes():
        if node.budget_watts is None:
            continue
        trips = model.trips(view.node_trace(node.name), node.budget_watts, node.name)
        if trips:
            result[node.name] = trips
            for trip in trips:
                obs_events.emit(
                    obs_events.BREAKER_TRIP,
                    severity="critical",
                    source="infra.breaker",
                    node=trip.node_name,
                    start_index=trip.start_index,
                    duration_samples=trip.duration_samples,
                    peak_overload_watts=trip.peak_overload_watts,
                )
    return result


def power_safe(view: NodePowerView, model: Optional[BreakerModel] = None) -> bool:
    """True when no budgeted node of ``view`` trips a breaker.

    Convenience wrapper over :func:`audit_view` for safety assertions: the
    chaos harness calls this after every recovery step.
    """
    return not audit_view(view, model)
