"""ESD (battery) peak shaving vs placement — the related-work argument.

Paper (Sec. 1/6): battery-based approaches "due to the battery capacity can
only handle peaks that span at most tens of minutes, making it unsuitable
for Facebook type of workloads whose peak may last for hours".  This
benchmark quantifies the argument on our fleets: how long are the
above-budget episodes an oblivious placement creates at RPP nodes, and how
much storage would riding them out require — versus the placement fix,
which needs none.
"""

import numpy as np
import pytest

from repro.analysis import experiments as E
from repro.analysis.report import format_table
from repro.baselines import (
    BatterySpec,
    overload_episode_durations,
    required_battery_energy,
    shave_peaks,
)
from repro.infra import Level, NodePowerView


def _run(full_scale):
    dc = E.get_datacenter("DC3", **full_scale)
    study = E.run_placement_study(dc)
    test = dc.test_traces()
    before = NodePowerView(dc.topology, dc.baseline, test)
    after = NodePowerView(dc.topology, study.optimized.assignment, test)

    results = []
    # Budget each RPP at the *optimised* peak: the capacity the placement
    # proves sufficient.  How would the oblivious placement + batteries
    # fare against the same budgets?
    for node in dc.topology.nodes_at_level(Level.RPP):
        budget = after.node_peak(node.name)
        trace = before.node_trace(node.name)
        if trace.peak() <= budget:
            continue
        episodes = overload_episode_durations(trace, budget)
        energy_wh = required_battery_energy(trace, budget)
        battery = BatterySpec(
            energy_wh=energy_wh * 0.25,  # a quarter of what riding it out needs
            max_discharge_watts=budget * 0.2,
            max_charge_watts=budget * 0.1,
        )
        shaved = shave_peaks(trace, budget, battery)
        results.append(
            {
                "node": node.name,
                "longest_episode_min": max(episodes),
                "required_wh": energy_wh,
                "unshaved_steps": shaved.unshaved_steps(),
            }
        )
    return results


@pytest.mark.benchmark(group="esd")
def test_esd_comparison(benchmark, emit_report, full_scale):
    results = benchmark.pedantic(_run, args=(full_scale,), rounds=1, iterations=1)
    assert results, "oblivious placement should overload some RPPs"

    longest = max(r["longest_episode_min"] for r in results)
    median_wh = float(np.median([r["required_wh"] for r in results]))
    undersized_fail = sum(1 for r in results if r["unshaved_steps"] > 0)

    rows = [
        [
            r["node"].rsplit("/", 2)[-2] + "/" + r["node"].rsplit("/", 1)[-1],
            f"{r['longest_episode_min']:.0f}",
            f"{r['required_wh']:.0f}",
            r["unshaved_steps"],
        ]
        for r in sorted(results, key=lambda r: -r["required_wh"])[:10]
    ]
    table = format_table(
        ["RPP (suffix)", "longest overload (min)", "storage to ride it out (Wh)", "unshaved steps @25% sizing"],
        rows,
        title=(
            "ESD vs placement — oblivious placement's RPP overloads against "
            "budgets the optimised placement meets with zero storage"
        ),
    )
    summary = (
        f"\noverloaded RPPs: {len(results)};  longest episode: {longest:.0f} min;  "
        f"median storage requirement: {median_wh:.0f} Wh/node;  "
        f"nodes where a 25%-sized battery still fails: {undersized_fail}/{len(results)}"
    )
    emit_report("esd_comparison", table + summary)

    # The paper's argument: episodes last hours, not tens of minutes.
    assert longest >= 120
    # Under-sized batteries fail on most overloaded nodes.
    assert undersized_fail >= len(results) * 0.5
