"""Datacenter runtime simulation substrate.

Server power models, LC demand recovery, guarded load balancing, and batch
throughput accounting — the pieces the dynamic power profile reshaping
runtime (Sec. 4) is built from.
"""

from .batch import BatchOutcome, batch_throughput
from .demand import DemandTrace, demand_at_target_load, demand_from_power
from .latency import LatencyModel
from .loadbalancer import DispatchOutcome, dispatch
from .power_model import DVFSModel, ServerPowerModel

__all__ = [
    "LatencyModel",
    "ServerPowerModel",
    "DVFSModel",
    "DemandTrace",
    "demand_from_power",
    "demand_at_target_load",
    "DispatchOutcome",
    "dispatch",
    "BatchOutcome",
    "batch_throughput",
]
