"""Zero-dependency span tracer: nested timed regions with counters.

A :class:`Tracer` records a tree of :class:`Span` objects — one per
``with obs.span("name"):`` region — capturing wall-clock and CPU time plus
arbitrary per-span counters.  Instrumentation sites call the module-level
:func:`span` helper, which is a near-free no-op unless a tracer has been
installed with :func:`tracing`; the hot paths therefore pay almost nothing
when nobody is profiling.

Typical use::

    from repro import obs

    with obs.tracing() as tracer:
        with obs.span("place", instances=len(records)):
            ...
    print(tracer.render())
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "current_span",
    "get_tracer",
    "span",
    "tracing",
]

#: Process-wide span id allocator: every opened span gets a unique id the
#: structured event log (:mod:`repro.obs.events`) uses for correlation.
_SPAN_IDS = itertools.count(1)


class Span:
    """One traced region: name, timings, counters, and child spans."""

    __slots__ = (
        "name",
        "span_id",
        "meta",
        "counters",
        "children",
        "wall_s",
        "cpu_s",
        "calls",
        "_start_wall",
        "_start_cpu",
    )

    def __init__(self, name: str, meta: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        #: Process-unique id; event-log entries reference it.
        self.span_id = next(_SPAN_IDS)
        self.meta: Dict[str, object] = dict(meta) if meta else {}
        self.counters: Dict[str, float] = {}
        self.children: List["Span"] = []
        self.wall_s = 0.0
        self.cpu_s = 0.0
        #: Number of regions merged into this span (1 unless merged).
        self.calls = 1
        self._start_wall = 0.0
        self._start_cpu = 0.0

    # ------------------------------------------------------------------
    def add(self, name: str, value: float = 1.0) -> None:
        """Increment a counter attributed to this span."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in this subtree (depth-first), if any."""
        for candidate in self.walk():
            if candidate.name == name:
                return candidate
        return None

    def subtree_counters(self) -> Dict[str, float]:
        """Counters aggregated over this span and every descendant."""
        totals: Dict[str, float] = {}
        for node in self.walk():
            for key, value in node.counters.items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def self_wall_s(self) -> float:
        """Wall time spent in this span excluding child spans."""
        return max(0.0, self.wall_s - sum(c.wall_s for c in self.children))

    def merged_children(self) -> List["Span"]:
        """Children grouped by name: same-named siblings become one span.

        Merged spans sum wall/CPU time and counters and carry ``calls``
        equal to the number of regions collapsed; their children are merged
        recursively.  Keeps reports for per-node loops (a placement visits
        dozens of tree nodes) readable.
        """
        order: List[str] = []
        grouped: Dict[str, List[Span]] = {}
        for child in self.children:
            if child.name not in grouped:
                order.append(child.name)
                grouped[child.name] = []
            grouped[child.name].append(child)
        return [_merge_spans(grouped[name]) for name in order]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation of the subtree."""
        payload: Dict[str, object] = {
            "name": self.name,
            "span_id": self.span_id,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "calls": self.calls,
        }
        if self.meta:
            payload["meta"] = dict(self.meta)
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(
        cls,
        payload: Dict[str, object],
        *,
        id_map: Optional[Dict[int, int]] = None,
    ) -> "Span":
        """Rebuild a completed span subtree from :meth:`to_dict` output.

        Every rebuilt span gets a *fresh* ``span_id`` from this process's
        allocator — ids are only unique per process, and a span shipped from
        a worker must not collide with the coordinator's.  ``id_map``
        (optional, filled in place) records ``original id -> new id`` so
        callers can remap event correlations shipped alongside the spans.
        """
        span = cls(str(payload["name"]), payload.get("meta"))  # type: ignore[arg-type]
        if id_map is not None and "span_id" in payload:
            id_map[int(payload["span_id"])] = span.span_id  # type: ignore[arg-type]
        span.wall_s = float(payload.get("wall_s", 0.0))  # type: ignore[arg-type]
        span.cpu_s = float(payload.get("cpu_s", 0.0))  # type: ignore[arg-type]
        span.calls = int(payload.get("calls", 1))  # type: ignore[arg-type]
        counters = payload.get("counters")
        if counters:
            span.counters = {str(k): float(v) for k, v in counters.items()}  # type: ignore[union-attr]
        for child in payload.get("children", ()):  # type: ignore[union-attr]
            span.children.append(cls.from_dict(child, id_map=id_map))
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, wall={self.wall_s:.4f}s, children={len(self.children)})"


def _merge_spans(group: List[Span]) -> Span:
    if len(group) == 1:
        single = group[0]
        merged = Span(single.name, single.meta)
        merged.counters = dict(single.counters)
        merged.wall_s = single.wall_s
        merged.cpu_s = single.cpu_s
        merged.calls = single.calls
        merged.children = single.merged_children()
        return merged
    merged = Span(group[0].name)
    merged.calls = 0
    carrier = Span(group[0].name)  # temporary parent to merge grandchildren
    for member in group:
        merged.wall_s += member.wall_s
        merged.cpu_s += member.cpu_s
        merged.calls += member.calls
        for key, value in member.counters.items():
            merged.counters[key] = merged.counters.get(key, 0.0) + value
        carrier.children.extend(member.children)
    merged.children = carrier.merged_children()
    return merged


class _SpanContext:
    """Context manager opening one span on a tracer (no generator overhead)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        span = self._span
        stack = self._tracer._stack
        if stack:
            stack[-1].children.append(span)
        else:
            self._tracer.roots.append(span)
        stack.append(span)
        span._start_cpu = time.process_time()
        span._start_wall = time.perf_counter()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.wall_s = time.perf_counter() - span._start_wall
        span.cpu_s = time.process_time() - span._start_cpu
        stack = self._tracer._stack
        if stack and stack[-1] is span:
            stack.pop()
        return False


class Tracer:
    """Collects a forest of spans for one profiled run.

    The open-span *stack* is thread-local: each thread nests its own spans
    independently, so two threads tracing concurrently (each with its own
    :func:`tracing` context, or even sharing one tracer) cannot corrupt each
    other's trees.  The recorded forest itself assumes a single writer per
    tree: a span's ``children`` list is only ever appended to by the thread
    that opened it, and ``roots`` appends are atomic under the GIL — so a
    shared tracer yields one interleaving-free subtree per thread, but the
    report should be rendered only after all writers are done.
    """

    __slots__ = ("roots", "_local")

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._local = threading.local()

    @property
    def _stack(self) -> List[Span]:
        """This thread's open-span stack (created lazily per thread)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    def span(self, name: str, **meta: object) -> _SpanContext:
        """Open a new span nested under the currently active one."""
        return _SpanContext(self, Span(name, meta or None))

    def current(self) -> Optional[Span]:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack
        return stack[-1] if stack else None

    def stack_names(self) -> List[str]:
        """Names of the calling thread's open spans, outermost first."""
        return [span.name for span in self._stack]

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment a counter on the innermost open span (no-op otherwise)."""
        stack = self._stack
        if stack:
            stack[-1].add(name, value)

    def attach(self, span: Span) -> None:
        """Graft a *completed* span subtree into the live tree.

        The span becomes a child of the calling thread's innermost open
        span (or a new root when none is open).  This is how the
        cross-process merge layer (:mod:`repro.obs.remote`) hangs a worker
        task's span tree under the coordinator span that dispatched it.
        """
        stack = self._stack
        if stack:
            stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def find(self, name: str) -> Optional[Span]:
        """First span named ``name`` across all recorded roots."""
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def to_dict(self) -> Dict[str, object]:
        return {"spans": [root.to_dict() for root in self.roots]}

    # ------------------------------------------------------------------
    def render(self, *, merge_siblings: bool = True) -> str:
        """A human-readable span-tree report.

        With ``merge_siblings`` (default), same-named siblings collapse into
        one line with a ``xN`` call count — per-node loops stay readable.
        """
        lines = ["span tree (wall / cpu)"]
        roots = self.roots
        if merge_siblings:
            carrier = Span("")
            carrier.children = roots
            roots = carrier.merged_children()
        for root in roots:
            _render_span(root, 0, lines)
        return "\n".join(lines)


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def _render_span(span: Span, depth: int, lines: List[str]) -> None:
    label = "  " * depth + span.name
    timing = f"{_format_seconds(span.wall_s)} / {_format_seconds(span.cpu_s)}"
    if span.calls > 1:
        timing += f"  x{span.calls}"
    extras = []
    if span.meta:
        extras.append(", ".join(f"{k}={v}" for k, v in sorted(span.meta.items())))
    if span.counters:
        extras.append(
            ", ".join(f"{k}={int(v) if float(v).is_integer() else v}" for k, v in sorted(span.counters.items()))
        )
    suffix = f"  [{'; '.join(extras)}]" if extras else ""
    lines.append(f"{label:<42} {timing}{suffix}")
    for child in span.children:
        _render_span(child, depth + 1, lines)


# ----------------------------------------------------------------------
# module-level API: a thread-local active tracer
#
# Each thread installs and sees its own tracer, so concurrent ``tracing()``
# contexts in different threads profile independently.  A tracer installed
# in one thread is deliberately invisible to others — share the Tracer
# object explicitly (it keeps per-thread stacks) to profile worker threads.
# ----------------------------------------------------------------------
_TLS = threading.local()


class _NoopSpan:
    """Stand-in yielded by :func:`span` when no tracer is active."""

    __slots__ = ()
    name = ""
    counters: Dict[str, float] = {}
    children: List[Span] = []

    def add(self, name: str, value: float = 1.0) -> None:
        return None


class _NoopContext:
    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return _NOOP_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()
_NOOP_CONTEXT = _NoopContext()


def span(name: str, **meta: object):
    """Open a traced region on the active tracer (cheap no-op when none)."""
    tracer = getattr(_TLS, "tracer", None)
    if tracer is None:
        return _NOOP_CONTEXT
    return tracer.span(name, **meta)


def get_tracer() -> Optional[Tracer]:
    """The calling thread's installed tracer, if profiling is on."""
    return getattr(_TLS, "tracer", None)


def current_span() -> Optional[Span]:
    """The innermost open span of the active tracer, if any."""
    tracer = getattr(_TLS, "tracer", None)
    return tracer.current() if tracer is not None else None


class tracing:
    """Install a tracer as the calling thread's active tracer.

    ::

        with obs.tracing() as tracer:
            run_pipeline()
        print(tracer.render())

    Nesting restores the previously active tracer on exit.  Installation is
    thread-local: two threads may each run their own ``tracing()`` context
    concurrently without seeing each other's spans.
    """

    __slots__ = ("tracer", "_previous")

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = getattr(_TLS, "tracer", None)
        _TLS.tracer = self.tracer
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        _TLS.tracer = self._previous
        return False
