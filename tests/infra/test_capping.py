"""Unit tests for the hierarchical power-capping simulator."""

import numpy as np
import pytest

from repro.infra import (
    Assignment,
    CappingPolicy,
    CappingSimulator,
    build_topology,
    compare_capping,
    two_level_spec,
)
from repro.traces import ServiceKind, TimeGrid, TraceSet


@pytest.fixture
def grid():
    return TimeGrid(0, 60, 24)


def scene(grid, lc_level=10.0, batch_level=10.0, budget=25.0):
    """One leaf with one LC and one batch instance, fixed levels."""
    topo = build_topology(two_level_spec("dc", leaves=2, leaf_capacity=4))
    traces = TraceSet(
        grid,
        ["lc", "batch"],
        np.vstack([np.full(24, lc_level), np.full(24, batch_level)]),
    )
    assignment = Assignment(topo, {"lc": "dc/rpp0", "batch": "dc/rpp0"})
    for node in topo.nodes():
        node.budget_watts = budget
    kinds = {"lc": ServiceKind.LATENCY_CRITICAL, "batch": ServiceKind.BATCH}
    return topo, assignment, traces, kinds


class TestPolicy:
    def test_floor_validation(self):
        with pytest.raises(ValueError):
            CappingPolicy(floors={ServiceKind.BATCH: 1.5})

    def test_priority_validation(self):
        with pytest.raises(ValueError):
            CappingPolicy(priority=(ServiceKind.BATCH,))

    def test_default_priority_caps_batch_first(self):
        policy = CappingPolicy()
        assert policy.priority[0] == ServiceKind.BATCH
        assert policy.priority[-1] == ServiceKind.LATENCY_CRITICAL


class TestSimulator:
    def test_no_capping_under_budget(self, grid):
        topo, assignment, traces, kinds = scene(grid, budget=25.0)
        report = CappingSimulator(topo, assignment, traces, kinds).run()
        assert report.total_event_steps == 0
        assert report.total_energy_shed == 0.0

    def test_batch_capped_first(self, grid):
        # Aggregate 20 W, budget 17 W: 3 W must go, batch can give up to
        # 6 W (floor 0.4), so LC is untouched.
        topo, assignment, traces, kinds = scene(grid, budget=17.0)
        report = CappingSimulator(topo, assignment, traces, kinds).run()
        assert report.batch_energy_shed > 0
        assert report.lc_energy_shed == 0.0

    def test_lc_capped_when_batch_exhausted(self, grid):
        # Budget 12 W: 8 W must go; batch can shed 6 W, LC sheds the rest.
        topo, assignment, traces, kinds = scene(grid, budget=12.0)
        report = CappingSimulator(topo, assignment, traces, kinds).run()
        assert report.batch_energy_shed > 0
        assert report.lc_energy_shed > 0

    def test_residual_when_floors_bind(self, grid):
        # Budget 5 W on a 20 W draw: even full capping cannot comply.
        topo, assignment, traces, kinds = scene(grid, budget=5.0)
        report = CappingSimulator(topo, assignment, traces, kinds).run()
        assert report.residual_overload_steps > 0

    def test_shed_amount_exact(self, grid):
        topo, assignment, traces, kinds = scene(grid, budget=17.0)
        report = CappingSimulator(topo, assignment, traces, kinds).run()
        # 3 W for 24 steps of 60 minutes.
        assert report.batch_energy_shed == pytest.approx(3 * 24 * 60, rel=1e-6)

    def test_leaf_capping_relieves_parent(self, grid):
        """After leaf-level capping the root sees the reduced draw."""
        topo, assignment, traces, kinds = scene(grid, budget=17.0)
        topo.node("dc").budget_watts = 18.0  # above the capped leaf draw
        report = CappingSimulator(topo, assignment, traces, kinds).run()
        assert report.nodes["dc"].event_steps == 0

    def test_requires_budgets(self, grid):
        topo, assignment, traces, kinds = scene(grid)
        topo.node("dc").budget_watts = None
        with pytest.raises(ValueError):
            CappingSimulator(topo, assignment, traces, kinds)

    def test_requires_kinds(self, grid):
        topo, assignment, traces, kinds = scene(grid)
        with pytest.raises(ValueError):
            CappingSimulator(topo, assignment, traces, {"lc": "mystery"})

    def test_input_traces_not_mutated(self, grid):
        topo, assignment, traces, kinds = scene(grid, budget=12.0)
        before = traces.matrix.copy()
        CappingSimulator(topo, assignment, traces, kinds).run()
        assert np.array_equal(traces.matrix, before)


class TestCompare:
    def test_ranking(self, grid):
        topo, assignment, traces, kinds = scene(grid, budget=12.0)
        bad = CappingSimulator(topo, assignment, traces, kinds).run()
        topo2, assignment2, traces2, kinds2 = scene(grid, budget=17.0)
        good = CappingSimulator(topo2, assignment2, traces2, kinds2).run()
        rows = compare_capping({"bad": bad, "good": good})
        assert rows[0][0] == "good"
        assert rows[0][1] <= rows[1][1]
